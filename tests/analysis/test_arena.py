"""Tests for the scheduler-arena pipeline: specs, artifact, report."""

import pytest

from repro.analysis.arena import (
    ARENA_SCHEMA_VERSION,
    arena_payload,
    arena_specs,
    default_arena_schedulers,
    load_arena,
    render_arena_markdown,
    scheduler_family,
    validate_arena,
    write_arena,
)
from repro.runner import execute_spec

QUICK = dict(duration_ms=20_000.0, warmup_ms=0.0)


def tiny_payload(**kwargs):
    """A real two-cell artifact from short simulations."""
    specs = arena_specs(("NODC", "DGCC"), rates=(0.8,), dds=(1,), **QUICK)
    results = [execute_spec(spec) for spec in specs]
    return specs, arena_payload(
        specs, results, git_sha="deadbeef", created="2026-08-08T00:00:00Z",
        **kwargs,
    )


class TestSpecs:
    def test_matrix_order_is_rate_dd_scheduler(self):
        specs = arena_specs(("NODC", "LOW"), rates=(0.8, 1.2), dds=(1, 4))
        assert len(specs) == 8
        assert [
            (s.workload.rate_tps, s.config.dd, s.scheduler) for s in specs
        ] == [
            (rate, dd, scheduler)
            for rate in (0.8, 1.2)
            for dd in (1, 4)
            for scheduler in ("NODC", "LOW")
        ]
        assert all(s.workload.kind == "exp1" for s in specs)

    def test_exp3_workload_carries_sigma(self):
        specs = arena_specs(
            ("GOW",), rates=(1.0,), dds=(1,), workload="exp3", sigma=2.0
        )
        assert specs[0].workload.kind == "exp3"
        assert dict(specs[0].workload.params)["sigma"] == 2.0

    def test_default_lineup_is_paper_plus_modern(self):
        lineup = default_arena_schedulers()
        for name in ("NODC", "ASL", "C2PL", "GOW", "LOW", "OPT",
                     "DGCC", "CAR", "PRED"):
            assert name in lineup
        assert "C2PL+M" not in lineup  # needs an MPL argument
        assert "2PL" not in lineup  # extension family stays out by default


class TestFamilies:
    def test_parameterised_names_resolve_through_base(self):
        assert scheduler_family("DGCC(B=16)") == "modern"
        assert scheduler_family("PRED") == "modern"
        assert scheduler_family("LOW") == "paper"
        assert scheduler_family("2PL") == "extension"

    def test_unknown_scheduler_raises(self):
        with pytest.raises(KeyError):
            scheduler_family("NOPE")


class TestPayload:
    def test_cells_validate_and_round_trip(self, tmp_path):
        _specs, payload = tiny_payload()
        assert validate_arena(payload) == 2
        assert payload["schema"] == ARENA_SCHEMA_VERSION
        assert payload["failed_cells"] == 0
        families = {c["scheduler"]: c["family"] for c in payload["cells"]}
        assert families == {"NODC": "paper", "DGCC": "modern"}
        json_path, md_path = write_arena(payload, tmp_path)
        assert load_arena(json_path) == payload
        assert md_path.read_text(encoding="utf-8").startswith(
            "# Scheduler arena"
        )

    def test_failed_cells_are_dropped_with_a_note(self):
        specs = arena_specs(("NODC", "DGCC"), rates=(0.8,), dds=(1,), **QUICK)
        results = [execute_spec(specs[0]), None]
        payload = arena_payload(specs, results)
        assert payload["failed_cells"] == 1
        assert [c["scheduler"] for c in payload["cells"]] == ["NODC"]
        assert "failed cell(s) dropped" in render_arena_markdown(payload)

    def test_bench_rows_contribute_phase_costs(self):
        specs = arena_specs(("NODC",), rates=(0.8,), dds=(1,), **QUICK)
        results = [execute_spec(specs[0])]
        bench_rows = [{
            "profile": {
                "phases": {"sched.decision": {"seconds": 2.0, "calls": 9}},
                "total_s": 3.0,
                "other_s": 1.0,
            },
        }]
        payload = arena_payload(specs, results, bench_rows)
        assert payload["cells"][0]["phase_cost_s"] == {
            "sched.decision": 2.0,
            "other": 1.0,
        }
        assert "sched.decision (67%)" in render_arena_markdown(payload)

    def test_length_mismatches_raise(self):
        specs, payload = tiny_payload()
        with pytest.raises(ValueError):
            arena_payload(specs, [None])
        with pytest.raises(ValueError):
            arena_payload(specs, [None, None], bench_rows=[None])


class TestValidation:
    def test_rejects_wrong_kind_schema_and_cells(self):
        _specs, payload = tiny_payload()
        for broken in (
            {**payload, "kind": "bench"},
            {**payload, "schema": 999},
            {**payload, "cells": []},
        ):
            with pytest.raises(ValueError):
                validate_arena(broken)

    def test_payload_stamps_top_level_schema_version(self):
        _specs, payload = tiny_payload()
        assert payload["schema_version"] == ARENA_SCHEMA_VERSION

    def test_rejects_unknown_schema_version(self):
        _specs, payload = tiny_payload()
        broken = {**payload, "schema_version": 999, "schema": 999}
        with pytest.raises(ValueError, match="unknown arena schema_version"):
            validate_arena(broken)

    def test_accepts_legacy_schema_key_only(self):
        _specs, payload = tiny_payload()
        legacy = dict(payload)
        del legacy["schema_version"]
        validate_arena(legacy)

    def test_rejects_missing_schema_stamp(self):
        _specs, payload = tiny_payload()
        unstamped = dict(payload)
        del unstamped["schema_version"]
        del unstamped["schema"]
        with pytest.raises(ValueError, match="no schema_version"):
            validate_arena(unstamped)

    def test_rejects_missing_field_and_bad_family(self):
        _specs, payload = tiny_payload()
        missing = {**payload, "cells": [dict(payload["cells"][0])]}
        del missing["cells"][0]["abort_rate"]
        with pytest.raises(ValueError, match="abort_rate"):
            validate_arena(missing)
        bad_family = {**payload, "cells": [dict(payload["cells"][0])]}
        bad_family["cells"][0]["family"] = "retro"
        with pytest.raises(ValueError, match="family"):
            validate_arena(bad_family)

    def test_rejects_non_mapping_phases(self):
        _specs, payload = tiny_payload()
        broken = {**payload, "cells": [dict(payload["cells"][0])]}
        broken["cells"][0]["phase_cost_s"] = [1, 2]
        with pytest.raises(ValueError, match="phase_cost_s"):
            validate_arena(broken)


class TestMarkdown:
    def test_report_groups_and_crowns_a_winner(self):
        _specs, payload = tiny_payload()
        text = render_arena_markdown(payload)
        assert "## exp1 @ 0.8 TPS, DD=1" in text
        assert text.count("**(best)**") == 1
        assert "## Head-to-head" in text
        assert "commit `deadbeef`" in text


class TestTimeBudgets:
    def budget(self, queued=1.0, blocked=2.0, executing=3.0, wasted=4.0):
        total = queued + blocked + executing + wasted
        return {
            "queued_ms": queued,
            "blocked_ms": blocked,
            "executing_ms": executing,
            "wasted_ms": wasted,
            "total_ms": total,
            "fractions": {
                "queued": queued / total,
                "blocked": blocked / total,
                "executing": executing / total,
                "wasted": wasted / total,
            },
        }

    def test_time_budgets_attach_and_validate(self, tmp_path):
        specs = arena_specs(("NODC", "DGCC"), rates=(0.8,), dds=(1,), **QUICK)
        results = [execute_spec(spec) for spec in specs]
        payload = arena_payload(
            specs, results, time_budgets=[self.budget(), None]
        )
        assert validate_arena(payload) == 2
        assert "time_budget" in payload["cells"][0]
        assert "time_budget" not in payload["cells"][1]
        budget = payload["cells"][0]["time_budget"]
        assert budget["fractions"]["wasted"] == pytest.approx(0.4)

    def test_markdown_why_columns_render_shares(self):
        specs = arena_specs(("NODC",), rates=(0.8,), dds=(1,), **QUICK)
        results = [execute_spec(specs[0])]
        payload = arena_payload(
            specs, results, time_budgets=[self.budget()]
        )
        text = render_arena_markdown(payload)
        assert "| %queued | %blocked | %exec | %wasted |" in text
        assert "| 10% | 20% | 30% | 40% |" in text

    def test_missing_budget_renders_dashes(self):
        specs = arena_specs(("NODC",), rates=(0.8,), dds=(1,), **QUICK)
        results = [execute_spec(specs[0])]
        payload = arena_payload(specs, results)
        assert "| - | - | - | - |" in render_arena_markdown(payload)

    def test_validation_rejects_malformed_budget(self):
        specs = arena_specs(("NODC",), rates=(0.8,), dds=(1,), **QUICK)
        results = [execute_spec(specs[0])]
        payload = arena_payload(
            specs, results, time_budgets=[self.budget()]
        )
        broken = {**payload, "cells": [dict(payload["cells"][0])]}
        broken["cells"][0]["time_budget"] = {"queued_ms": 1.0}
        with pytest.raises(ValueError, match="time_budget"):
            validate_arena(broken)
        not_mapping = {**payload, "cells": [dict(payload["cells"][0])]}
        not_mapping["cells"][0]["time_budget"] = [1, 2]
        with pytest.raises(ValueError, match="time_budget"):
            validate_arena(not_mapping)

    def test_budget_length_mismatch_raises(self):
        specs = arena_specs(("NODC",), rates=(0.8,), dds=(1,), **QUICK)
        results = [execute_spec(specs[0])]
        with pytest.raises(ValueError, match="time_budgets"):
            arena_payload(specs, results, time_budgets=[None, None])
