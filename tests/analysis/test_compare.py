"""Tests for paper-agreement metrics and reference data."""

import pytest

from repro.analysis import ordering_agreement, paper_data, ratio_spread


class TestOrderingAgreement:
    def test_identical_ordering(self):
        a = {"x": 1.0, "y": 2.0, "z": 3.0}
        assert ordering_agreement(a, a) == 1.0

    def test_reversed_ordering(self):
        measured = {"x": 1.0, "y": 2.0, "z": 3.0}
        reference = {"x": 3.0, "y": 2.0, "z": 1.0}
        assert ordering_agreement(measured, reference) == 0.0

    def test_partial_agreement(self):
        measured = {"x": 1.0, "y": 2.0, "z": 3.0}
        reference = {"x": 1.0, "y": 3.0, "z": 2.0}  # y/z pair flipped
        assert ordering_agreement(measured, reference) == pytest.approx(2 / 3)

    def test_ties_count_half(self):
        measured = {"x": 1.0, "y": 1.0}
        reference = {"x": 1.0, "y": 2.0}
        assert ordering_agreement(measured, reference) == 0.5

    def test_needs_two_common_keys(self):
        with pytest.raises(ValueError):
            ordering_agreement({"x": 1.0}, {"x": 2.0})

    def test_uses_only_common_keys(self):
        measured = {"x": 1.0, "y": 2.0, "extra": 9.0}
        reference = {"x": 1.0, "y": 2.0, "other": 0.0}
        assert ordering_agreement(measured, reference) == 1.0


class TestRatioSpread:
    def test_uniform_scaling_is_one(self):
        measured = {"x": 2.0, "y": 4.0}
        reference = {"x": 1.0, "y": 2.0}
        assert ratio_spread(measured, reference) == pytest.approx(1.0)

    def test_spread_of_two(self):
        measured = {"x": 1.0, "y": 4.0}
        reference = {"x": 1.0, "y": 1.0}
        assert ratio_spread(measured, reference) == pytest.approx(2.0)

    def test_skips_bad_entries(self):
        measured = {"x": 2.0, "y": float("nan")}
        reference = {"x": 1.0, "y": 5.0}
        assert ratio_spread(measured, reference) == pytest.approx(1.0)

    def test_no_comparable_entries(self):
        with pytest.raises(ValueError):
            ratio_spread({"x": float("nan")}, {"x": 1.0})


class TestPaperData:
    def test_table2_shape(self):
        assert set(paper_data.TABLE2) == {8, 16, 32, 64}
        for row in paper_data.TABLE2.values():
            assert set(row) == {"NODC", "ASL", "GOW", "LOW", "C2PL", "OPT"}

    def test_table3_is_response_times(self):
        # RT falls monotonically with DD for the lock-based schedulers
        for scheduler in ("ASL", "GOW", "LOW", "C2PL+M"):
            values = [paper_data.TABLE3[dd][scheduler] for dd in (1, 2, 4, 8)]
            assert values == sorted(values, reverse=True)

    def test_table4_low_best_lock_based(self):
        row = paper_data.TABLE4_THROUGHPUT[1]
        lock_based = {k: row[k] for k in ("ASL", "GOW", "LOW", "C2PL")}
        assert max(lock_based, key=lock_based.get) == "LOW"

    def test_table5_gow_less_sensitive(self):
        for dd in (1, 2, 4):
            assert paper_data.TABLE5["GOW"][dd] > paper_data.TABLE5["LOW"][dd]
