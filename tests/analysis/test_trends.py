"""Trend analytics: ordering, series, regression/drift/memory flags,
report determinism."""

import json

import pytest

from repro.analysis.trends import (
    DEFAULT_WINDOW,
    TRENDS_SCHEMA_VERSION,
    build_cell_series,
    cell_key,
    detect_ranking_drift,
    detect_regressions,
    history_report,
    load_history,
    memory_trajectory,
    order_snapshots,
    render_history_markdown,
    validate_history_payload,
    write_history,
)
from repro.obs.history import HistorySchemaError, HistoryStore

from tests.obs.test_history import write_bench


def bench_record(snapshot, scheduler="GOW", events_per_s=100_000.0,
                 created=None, maxrss_kb=None, throughput_tps=1.0,
                 rate_tps=1.0, dd=1, duration_ms=1000.0):
    return {
        "history_schema_version": 1,
        "kind": "bench.cell",
        "family": "bench",
        "snapshot": snapshot,
        "source": f"{snapshot}.json",
        "created": created,
        "git_sha": None,
        "host": None,
        "cell": {"scheduler": scheduler, "workload": "exp1",
                 "rate_tps": rate_tps, "dd": dd, "seed": 0,
                 "duration_ms": duration_ms},
        "metrics": {"events_per_s": events_per_s,
                    "maxrss_kb": maxrss_kb,
                    "throughput_tps": throughput_tps},
    }


def series_of(values, scheduler="GOW", **kwargs):
    """One cell's record per snapshot, snapshots stamped in order."""
    return [
        bench_record(f"snap{i}", scheduler=scheduler, events_per_s=value,
                     created=f"2026-01-{i + 1:02d}T00:00:00Z", **kwargs)
        for i, value in enumerate(values)
    ]


class TestOrdering:
    def test_snapshots_sort_by_created_then_store_order(self):
        records = [
            bench_record("late", created="2026-02-01T00:00:00Z"),
            bench_record("early", created="2026-01-01T00:00:00Z"),
            bench_record("unstamped", created=None),
        ]
        ordered = [s["snapshot"] for s in order_snapshots(records)]
        assert ordered == ["unstamped", "early", "late"]

    def test_cell_key_drops_seed_and_duration(self):
        key = cell_key({"scheduler": "GOW", "workload": "exp1",
                        "rate_tps": 1.0, "dd": 4, "seed": 7,
                        "duration_ms": 60_000.0})
        assert key == ("GOW", "exp1", 1.0, 4)

    def test_longest_horizon_wins_within_a_snapshot(self):
        records = [
            bench_record("s1", events_per_s=50_000.0, duration_ms=1000.0),
            bench_record("s1", events_per_s=80_000.0, duration_ms=5000.0),
        ]
        series = build_cell_series(order_snapshots(records))
        samples = series[("GOW", "exp1", 1.0, 1)]
        assert len(samples) == 1
        assert samples[0]["value"] == 80_000.0


class TestRegressions:
    def test_stable_series_is_ok(self):
        series = build_cell_series(order_snapshots(
            series_of([100.0, 101.0, 99.0, 100.5])
        ))
        verdict = detect_regressions(series)
        assert verdict["ok"] is True
        assert verdict["evaluated"] == 1
        assert verdict["regressions"] == 0

    def test_latest_drop_below_tolerance_regresses(self):
        series = build_cell_series(order_snapshots(
            series_of([100.0, 100.0, 100.0, 60.0])
        ))
        verdict = detect_regressions(series, tolerance=0.25)
        assert verdict["ok"] is False
        assert verdict["regressions"] == 1
        assert verdict["cells"][0]["status"] == "regression"
        assert verdict["cells"][0]["ratio"] == pytest.approx(0.6)
        assert any("median speed ratio" in r for r in verdict["reasons"])

    def test_single_sample_is_insufficient(self):
        series = build_cell_series(order_snapshots(series_of([100.0])))
        verdict = detect_regressions(series)
        assert verdict["evaluated"] == 0
        assert verdict["cells"][0]["status"] == "insufficient"
        assert verdict["ok"] is True

    def test_trailing_median_absorbs_one_bad_historical_sample(self):
        # a historic dip does not drag the baseline: median of the
        # window, not the mean
        series = build_cell_series(order_snapshots(
            series_of([100.0, 30.0, 100.0, 100.0, 98.0])
        ))
        verdict = detect_regressions(series, tolerance=0.25)
        assert verdict["ok"] is True

    def test_one_noisy_cell_stays_below_quorum_on_a_big_matrix(self):
        records = []
        for i in range(16):
            scheduler = f"S{i}"
            values = [100.0, 100.0, 100.0 if i else 50.0]
            records.extend(series_of(values, scheduler=scheduler))
        verdict = detect_regressions(
            build_cell_series(order_snapshots(records))
        )
        assert verdict["regressions"] == 1
        assert verdict["quorum"] == 2  # ceil(0.125 * 16)
        assert verdict["ok"] is True

    def test_broad_slowdown_trips_the_quorum(self):
        records = []
        for i in range(8):
            records.extend(series_of(
                [100.0, 100.0, 50.0], scheduler=f"S{i}"
            ))
        verdict = detect_regressions(
            build_cell_series(order_snapshots(records))
        )
        assert verdict["ok"] is False
        assert verdict["regressions"] == 8
        assert any("quorum" in r for r in verdict["reasons"])

    def test_memory_growth_flags_and_fails(self):
        series = build_cell_series(order_snapshots(series_of(
            [100.0, 100.0, 100.0],
        )))
        # splice in growing maxrss on the same records
        for key, samples in series.items():
            for i, sample in enumerate(samples):
                sample["maxrss_kb"] = 100_000 * (1 + i)
        verdict = detect_regressions(series, mem_tolerance=0.30)
        assert verdict["mem_growth"] == 1
        assert verdict["ok"] is False
        assert any("memory" in r for r in verdict["reasons"])
        assert verdict["cells"][0]["mem_status"] == "growth"

    def test_window_bounds_the_baseline(self):
        # ancient fast samples fall out of a window-2 baseline
        series = build_cell_series(order_snapshots(
            series_of([1000.0, 1000.0, 100.0, 100.0, 100.0])
        ))
        verdict = detect_regressions(series, window=2)
        assert verdict["ok"] is True
        verdict_wide = detect_regressions(series, window=4)
        assert verdict_wide["ok"] is False

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            detect_regressions({}, tolerance=1.5)
        with pytest.raises(ValueError):
            detect_regressions({}, mem_tolerance=0.0)
        with pytest.raises(ValueError):
            detect_regressions({}, window=0)


class TestRankingDrift:
    def test_flip_is_flagged_not_failed(self):
        records = (
            series_of([100.0, 100.0, 100.0], scheduler="A",
                      throughput_tps=2.0)
            + series_of([90.0, 90.0, 90.0], scheduler="B",
                        throughput_tps=1.0)
        )
        # B overtakes A in the latest snapshot
        records[-1]["metrics"]["throughput_tps"] = 3.0
        series = build_cell_series(order_snapshots(records))
        flags = detect_ranking_drift(series)
        assert len(flags) == 1
        assert flags[0]["before"] == ["A", "B"]
        assert flags[0]["after"] == ["B", "A"]
        # drift never enters the failure verdict
        assert detect_regressions(series)["ok"] is True

    def test_stable_ranking_yields_no_flags(self):
        records = (
            series_of([100.0] * 3, scheduler="A", throughput_tps=2.0)
            + series_of([90.0] * 3, scheduler="B", throughput_tps=1.0)
        )
        assert detect_ranking_drift(
            build_cell_series(order_snapshots(records))
        ) == []

    def test_single_scheduler_groups_are_skipped(self):
        records = series_of([100.0] * 3, scheduler="A")
        assert detect_ranking_drift(
            build_cell_series(order_snapshots(records))
        ) == []


class TestMemoryTrajectory:
    def test_peaks_per_snapshot(self):
        records = series_of([100.0, 100.0], maxrss_kb=None)
        records[1]["metrics"]["maxrss_kb"] = 55_000
        trajectory = memory_trajectory(order_snapshots(records))
        assert len(trajectory) == 1
        assert trajectory[0]["peak_kb"] == 55_000.0


class TestReport:
    def _store(self, tmp_path, slowdown=False):
        store = HistoryStore(tmp_path / "history")
        speeds = [100_000.0, 105_000.0, 102_000.0]
        if slowdown:
            speeds.append(40_000.0)
        for i, speed in enumerate(speeds):
            write_bench(
                tmp_path / f"b{i}.json", n_cells=2, events_per_s=speed,
                created=f"2026-01-{i + 1:02d}T00:00:00Z",
            )
            store.ingest(tmp_path / f"b{i}.json")
        return store

    def test_report_is_deterministic_and_round_trips(self, tmp_path):
        store = self._store(tmp_path)
        payload = history_report(store)
        assert payload == history_report(store)
        assert payload["schema_version"] == TRENDS_SCHEMA_VERSION
        assert len(payload["snapshots"]) == 3
        assert payload["verdict"]["ok"] is True
        json_path = tmp_path / "HISTORY.json"
        md_path = tmp_path / "HISTORY.md"
        write_history(payload, json_path, md_path)
        assert load_history(json_path) == json.loads(
            json.dumps(payload)
        )
        text = md_path.read_text(encoding="utf-8")
        assert text.startswith("# Metrics history")
        assert "**OK**" in text

    def test_report_flags_injected_slowdown(self, tmp_path):
        store = self._store(tmp_path, slowdown=True)
        payload = history_report(store)
        assert payload["verdict"]["ok"] is False
        text = render_history_markdown(payload)
        assert "**REGRESSION**" in text

    def test_series_and_aggregate_track_every_snapshot(self, tmp_path):
        payload = history_report(self._store(tmp_path))
        assert len(payload["aggregate"]) == 3
        assert all(len(s["samples"]) == 3 for s in payload["series"])
        assert payload["aggregate"][0]["events_per_s_sum"] == 200_000.0

    def test_validate_rejects_unknown_version(self):
        with pytest.raises(HistorySchemaError, match="schema_version"):
            validate_history_payload({"schema_version": 999})

    def test_window_default_is_sane(self):
        assert DEFAULT_WINDOW >= 2
