"""Tests for the plain strict-2PL baseline (deadlock detect + restart)."""

from repro.core import SerializabilityAuditor, TwoPLScheduler
from repro.machine import MachineConfig
from repro.sim import run_simulation
from repro.txn import experiment1_workload

from tests.core.test_schedulers import Harness, make_txn


class TestBasics:
    def test_incremental_locking(self):
        h = Harness(TwoPLScheduler)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]), hold_ms=100)
        h.lifecycle(make_txn(2, [(1, "w", 1.0), (0, "w", 1.0)]), hold_ms=10)
        h.run(until=50)
        assert h.scheduler.lock_table.holds(2, 1)
        assert not h.scheduler.lock_table.holds(2, 0)

    def test_nonconflicting_run_in_parallel(self):
        h = Harness(TwoPLScheduler)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]))
        h.lifecycle(make_txn(2, [(1, "w", 1.0)]))
        h.run()
        commits = [e[0] for e in h.events("committed")]
        # near-simultaneous: only the 1 ms ddtime evaluations on the CN
        # CPU separate them
        assert abs(commits[0] - commits[1]) <= 2.0

    def test_blocked_waits_for_release(self):
        h = Harness(TwoPLScheduler)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]), hold_ms=100)
        h.lifecycle(make_txn(2, [(0, "w", 1.0)]), hold_ms=10)
        h.run()
        commits = {e[2]: e[0] for e in h.events("committed")}
        assert commits[2] > commits[1]


class TestDeadlockResolution:
    def test_crossing_pattern_dooms_the_youngest(self):
        """T1: A then B; T2: B then A -- a genuine waits-for deadlock.

        Plain 2PL cannot prevent it; the detector must doom exactly one
        (the youngest: T2) so the other can finish."""
        h = Harness(TwoPLScheduler)
        t1 = make_txn(1, [(0, "w", 1.0), (1, "w", 1.0)])
        t2 = make_txn(2, [(1, "w", 1.0), (0, "w", 1.0)])
        aborted = []

        def driver(txn, first, second, delay):
            yield from h.scheduler.admit(txn)
            yield from h.scheduler.acquire(txn, first)
            yield h.env.timeout(delay)
            try:
                yield from h.scheduler.acquire(txn, second)
            except Exception:  # TransactionAborted
                aborted.append(txn.txn_id)
                yield from h.scheduler.abort(txn)
                return
            yield from h.scheduler.commit(txn)

        h.env.process(driver(t1, 0, 1, 10))
        h.env.process(driver(t2, 1, 0, 10))
        h.run(until=5_000)
        assert aborted == [2]
        assert h.scheduler.stats.commits.total == 1

    def test_simulation_restarts_victims_to_completion(self):
        result = run_simulation(
            "2PL",
            experiment1_workload(0.5, num_files=8),
            MachineConfig(dd=1, num_files=8),  # few files: deadlocks likely
            seed=4,
            duration_ms=300_000,
        )
        assert result.completed > 10
        assert result.restarts > 0

    def test_histories_remain_serializable(self):
        auditor = SerializabilityAuditor()
        run_simulation(
            "2PL",
            experiment1_workload(0.6, num_files=8),
            MachineConfig(dd=1, num_files=8),
            seed=4,
            duration_ms=300_000,
            auditor=auditor,
        )
        assert auditor.committed_count > 10
        assert auditor.is_serializable(), auditor.find_cycle()

    def test_registry_exposes_2pl(self):
        from repro.core import available

        assert "2PL" in available()
