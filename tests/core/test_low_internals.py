"""Focused unit tests for LOW's conflict-set machinery."""

import pytest

from repro.core import LOWScheduler
from repro.des import Environment
from repro.machine import ControlNode, MachineConfig
from repro.txn import AccessMode, BatchTransaction, Step


def make_txn(txn_id, spec):
    steps = [
        Step(f, AccessMode.EXCLUSIVE if op == "w" else AccessMode.SHARED, c)
        for f, op, c in spec
    ]
    return BatchTransaction(txn_id, steps, 0.0)


@pytest.fixture
def low():
    env = Environment()
    config = MachineConfig()
    return LOWScheduler(env, config, ControlNode(env, config), k=2)


def admit_directly(low, txn):
    """Install a transaction in LOW's WTPG without the process machinery."""
    low._register_in_wtpg(txn)


class TestConflictCounts:
    def test_count_counts_conflicting_declarers_per_file(self, low):
        admit_directly(low, make_txn(1, [(0, "w", 1.0)]))
        admit_directly(low, make_txn(2, [(0, "w", 1.0)]))
        admit_directly(low, make_txn(3, [(0, "r", 1.0)]))
        # T1's X access conflicts with T2 (X) and T3 (S vs X): count 2
        assert low._conflict_count(1, 0) == 2
        # T3's S access conflicts only with the two X declarers
        assert low._conflict_count(3, 0) == 2

    def test_readers_do_not_conflict_with_each_other(self, low):
        admit_directly(low, make_txn(1, [(0, "r", 1.0)]))
        admit_directly(low, make_txn(2, [(0, "r", 1.0)]))
        assert low._conflict_count(1, 0) == 0

    def test_admission_respects_k(self, low):
        for txn_id in (1, 2, 3):
            assert low._conflict_counts_ok(make_txn(txn_id, [(0, "w", 1.0)]))
            admit_directly(low, make_txn(txn_id, [(0, "w", 1.0)]))
        # fourth X-writer would push every count past K=2
        assert not low._conflict_counts_ok(make_txn(4, [(0, "w", 1.0)]))
        # but a transaction on another file is fine
        assert low._conflict_counts_ok(make_txn(5, [(1, "w", 1.0)]))

    def test_admission_checks_existing_counts_too(self, low):
        """A newcomer with few conflicts must still be rejected if it
        would push an *existing* access's count above K."""
        admit_directly(low, make_txn(1, [(0, "w", 1.0), (1, "w", 1.0)]))
        admit_directly(low, make_txn(2, [(0, "w", 1.0)]))
        admit_directly(low, make_txn(3, [(0, "w", 1.0)]))
        # T1's C on file 0 is already 2 = K; newcomer touching file 0 would
        # make it 3 even though the newcomer's own count (3 > K) also fails;
        # use a reader so its own count (2 X-writers... also > K is fine to
        # check): reader conflicts with writers 1,2,3 -> own count 3 > K
        assert not low._conflict_counts_ok(make_txn(4, [(0, "r", 1.0)]))


class TestConflictingDeclarations:
    def test_excludes_requester_and_holders(self, low):
        t1 = make_txn(1, [(0, "w", 1.0)])
        t2 = make_txn(2, [(0, "w", 1.0)])
        t3 = make_txn(3, [(0, "w", 1.0)])
        for t in (t1, t2, t3):
            admit_directly(low, t)
        # T3 holds the lock: it is excluded from C(q) of T1
        low.lock_table.grant(3, 0, AccessMode.EXCLUSIVE)
        c_q = low._conflicting_declarations(t1, 0, AccessMode.EXCLUSIVE)
        assert c_q == [2]

    def test_no_conflicts_empty(self, low):
        t1 = make_txn(1, [(0, "r", 1.0)])
        t2 = make_txn(2, [(1, "w", 1.0)])
        admit_directly(low, t1)
        admit_directly(low, t2)
        assert low._conflicting_declarations(t1, 0, AccessMode.SHARED) == []


class TestWTPGDeclarerIndex:
    def test_conflicting_declarers_via_wtpg(self, low):
        admit_directly(low, make_txn(1, [(0, "w", 1.0)]))
        admit_directly(low, make_txn(2, [(0, "r", 1.0)]))
        admit_directly(low, make_txn(3, [(0, "r", 1.0)]))
        # writer 1 conflicts with both readers
        assert low.wtpg.conflicting_declarers(1, 0) == [2, 3]
        # reader 2 conflicts only with the writer
        assert low.wtpg.conflicting_declarers(2, 0) == [1]
