"""Unit tests for the serializability auditor."""

import pytest

from repro.core import SerializabilityAuditor
from repro.txn import AccessMode

S = AccessMode.SHARED
X = AccessMode.EXCLUSIVE


class TestBasics:
    def test_empty_history_serializable(self):
        auditor = SerializabilityAuditor()
        assert auditor.is_serializable()
        assert auditor.committed_count == 0

    def test_single_transaction(self):
        auditor = SerializabilityAuditor()
        auditor.record_access(1, 0, X, 10.0)
        auditor.record_commit(1, 20.0)
        assert auditor.is_serializable()

    def test_double_commit_rejected(self):
        auditor = SerializabilityAuditor()
        auditor.record_commit(1, 10.0)
        with pytest.raises(ValueError):
            auditor.record_commit(1, 20.0)

    def test_uncommitted_accesses_ignored(self):
        """Aborted (never-committed) transactions do not create edges."""
        auditor = SerializabilityAuditor()
        auditor.record_access(1, 0, X, 1.0)
        auditor.record_access(2, 0, X, 2.0)
        auditor.record_access(1, 1, X, 3.0)
        auditor.record_access(2, 1, X, 0.5)
        auditor.record_commit(1, 10.0)  # 2 never commits
        assert auditor.is_serializable()


class TestGraphConstruction:
    def test_conflicting_order_creates_edge(self):
        auditor = SerializabilityAuditor()
        auditor.record_access(1, 0, X, 1.0)
        auditor.record_access(2, 0, X, 5.0)
        auditor.record_commit(1, 3.0)
        auditor.record_commit(2, 8.0)
        graph = auditor.serialization_graph()
        assert graph[1] == {2}
        assert graph[2] == set()

    def test_shared_accesses_no_edge(self):
        auditor = SerializabilityAuditor()
        auditor.record_access(1, 0, S, 1.0)
        auditor.record_access(2, 0, S, 2.0)
        auditor.record_commit(1, 3.0)
        auditor.record_commit(2, 4.0)
        graph = auditor.serialization_graph()
        assert graph[1] == set() and graph[2] == set()

    def test_cycle_detected(self):
        auditor = SerializabilityAuditor()
        auditor.record_access(1, 0, X, 1.0)
        auditor.record_access(2, 0, X, 2.0)  # 1 -> 2 on file 0
        auditor.record_access(2, 1, X, 3.0)
        auditor.record_access(1, 1, X, 4.0)  # 2 -> 1 on file 1
        auditor.record_commit(1, 10.0)
        auditor.record_commit(2, 11.0)
        assert not auditor.is_serializable()
        cycle = auditor.find_cycle()
        assert set(cycle) >= {1, 2}

    def test_three_way_cycle(self):
        auditor = SerializabilityAuditor()
        pairs = [(1, 2, 0), (2, 3, 1), (3, 1, 2)]
        t = 0.0
        for first, second, file_id in pairs:
            auditor.record_access(first, file_id, X, t)
            auditor.record_access(second, file_id, X, t + 1)
            t += 10
        for txn_id in (1, 2, 3):
            auditor.record_commit(txn_id, 100.0 + txn_id)
        assert not auditor.is_serializable()

    def test_simultaneous_conflicts_ordered_by_commit(self):
        auditor = SerializabilityAuditor()
        auditor.record_access(1, 0, X, 5.0)
        auditor.record_access(2, 0, X, 5.0)  # same instant
        auditor.record_commit(1, 10.0)
        auditor.record_commit(2, 20.0)
        graph = auditor.serialization_graph()
        assert graph[1] == {2}


class TestDeferredWrites:
    def test_read_before_deferred_write_orders_by_commit(self):
        """Under OCC a read at t=5 of a file 'written' at t=2 by a still-
        uncommitted writer actually reads the pre-image: reader precedes
        writer when the write only becomes visible at the later commit."""
        auditor = SerializabilityAuditor(deferred_writes=True)
        auditor.record_access(2, 0, X, 2.0)  # T2 writes (workspace)
        auditor.record_access(1, 0, S, 5.0)  # T1 reads pre-image
        auditor.record_commit(1, 6.0)
        auditor.record_commit(2, 7.0)  # write visible here
        graph = auditor.serialization_graph()
        assert graph[1] == {2}
        assert auditor.is_serializable()

    def test_in_place_semantics_differ(self):
        """Same history under in-place writes is writer-before-reader."""
        auditor = SerializabilityAuditor(deferred_writes=False)
        auditor.record_access(2, 0, X, 2.0)
        auditor.record_access(1, 0, S, 5.0)
        auditor.record_commit(1, 6.0)
        auditor.record_commit(2, 7.0)
        graph = auditor.serialization_graph()
        assert graph[2] == {1}


class TestCompaction:
    """Committed-prefix compaction: same verdicts, bounded memory."""

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            SerializabilityAuditor(compact_interval=0)

    def test_compact_empty_history(self):
        auditor = SerializabilityAuditor()
        assert auditor.compact() == 0
        assert auditor.is_serializable()

    def test_closed_prefix_is_dropped(self):
        auditor = SerializabilityAuditor()
        auditor.record_access(1, 0, X, 1.0)
        auditor.record_commit(1, 2.0)
        auditor.record_access(2, 1, X, 10.0)  # live, first access at 10
        assert auditor.compact() == 1
        assert auditor.retained_accesses == 1
        assert auditor.committed_count == 1  # folded, still counted
        assert auditor.is_serializable()

    def test_live_transaction_pins_watermark(self):
        auditor = SerializabilityAuditor()
        auditor.record_access(2, 1, X, 0.5)  # live since before T1's work
        auditor.record_access(1, 0, X, 1.0)
        auditor.record_commit(1, 2.0)
        assert auditor.compact() == 0  # T1 not closed: T2 started earlier
        assert auditor.retained_accesses == 2

    def test_record_abort_unpins_watermark(self):
        """Without the abort hint a dead attempt would pin compaction."""
        auditor = SerializabilityAuditor()
        auditor.record_access(9, 1, X, 0.1)  # attempt that will abort
        auditor.record_access(1, 0, X, 1.0)
        auditor.record_commit(1, 2.0)
        auditor.record_access(2, 1, X, 10.0)
        auditor.record_abort(9)
        assert auditor.compact() == 1
        assert auditor.retained_accesses == 1  # T9's and T1's gone

    def test_cycle_found_before_compaction_is_frozen(self):
        auditor = SerializabilityAuditor()
        auditor.record_access(1, 0, X, 1.0)
        auditor.record_access(2, 0, X, 2.0)
        auditor.record_access(2, 1, X, 3.0)
        auditor.record_access(1, 1, X, 4.0)  # 1 -> 2 on f0, 2 -> 1 on f1
        auditor.record_commit(1, 5.0)
        auditor.record_commit(2, 6.0)
        auditor.record_access(3, 2, X, 50.0)  # live, far in the future
        assert not auditor.is_serializable()
        assert auditor.compact() == 2
        assert auditor.retained_accesses == 1
        # the accesses are gone, the verdict is not
        assert not auditor.is_serializable()
        assert set(auditor.find_cycle()) >= {1, 2}

    def test_auto_compaction_matches_uncompacted_verdict(self):
        """The regression check: interleaved commit/abort traffic gives
        identical verdicts with and without ``compact_interval``, while
        the compacted auditor's buffer stays bounded."""
        import random

        rng = random.Random(11)
        plain = SerializabilityAuditor()
        compacted = SerializabilityAuditor(compact_interval=25)
        time = 0.0
        for txn_id in range(1, 120):
            files = rng.sample(range(6), k=2)
            for file_id in files:
                time += 1.0
                for auditor in (plain, compacted):
                    auditor.record_access(txn_id, file_id, X, time)
            time += 1.0
            if rng.random() < 0.2:
                for auditor in (plain, compacted):
                    auditor.record_abort(txn_id)
            else:
                for auditor in (plain, compacted):
                    auditor.record_commit(txn_id, time)
        assert compacted.is_serializable() == plain.is_serializable()
        assert compacted.committed_count == plain.committed_count
        # serial X-X traffic is serializable and compacts to near-nothing
        assert plain.is_serializable()
        assert compacted.retained_accesses < plain.retained_accesses
        assert compacted.retained_accesses <= 25 + 2

    def test_auto_compaction_preserves_cycle_verdict(self):
        plain = SerializabilityAuditor()
        compacted = SerializabilityAuditor(compact_interval=3)
        history = [
            (1, 0, 1.0), (2, 0, 2.0),  # 1 -> 2 on f0
            (2, 1, 3.0), (1, 1, 4.0),  # 2 -> 1 on f1: cycle
        ]
        for txn_id, file_id, t in history:
            for auditor in (plain, compacted):
                auditor.record_access(txn_id, file_id, X, t)
        for auditor in (plain, compacted):
            auditor.record_commit(1, 5.0)
            auditor.record_commit(2, 6.0)
        # later serial traffic triggers compaction of the cyclic prefix
        t = 50.0
        for txn_id in range(3, 12):
            for auditor in (plain, compacted):
                auditor.record_access(txn_id, 2, X, t)
                auditor.record_commit(txn_id, t + 0.5)
            t += 10.0
        assert not plain.is_serializable()
        assert not compacted.is_serializable()
        assert compacted.retained_accesses < plain.retained_accesses
