"""Unit tests for the serializability auditor."""

import pytest

from repro.core import SerializabilityAuditor
from repro.txn import AccessMode

S = AccessMode.SHARED
X = AccessMode.EXCLUSIVE


class TestBasics:
    def test_empty_history_serializable(self):
        auditor = SerializabilityAuditor()
        assert auditor.is_serializable()
        assert auditor.committed_count == 0

    def test_single_transaction(self):
        auditor = SerializabilityAuditor()
        auditor.record_access(1, 0, X, 10.0)
        auditor.record_commit(1, 20.0)
        assert auditor.is_serializable()

    def test_double_commit_rejected(self):
        auditor = SerializabilityAuditor()
        auditor.record_commit(1, 10.0)
        with pytest.raises(ValueError):
            auditor.record_commit(1, 20.0)

    def test_uncommitted_accesses_ignored(self):
        """Aborted (never-committed) transactions do not create edges."""
        auditor = SerializabilityAuditor()
        auditor.record_access(1, 0, X, 1.0)
        auditor.record_access(2, 0, X, 2.0)
        auditor.record_access(1, 1, X, 3.0)
        auditor.record_access(2, 1, X, 0.5)
        auditor.record_commit(1, 10.0)  # 2 never commits
        assert auditor.is_serializable()


class TestGraphConstruction:
    def test_conflicting_order_creates_edge(self):
        auditor = SerializabilityAuditor()
        auditor.record_access(1, 0, X, 1.0)
        auditor.record_access(2, 0, X, 5.0)
        auditor.record_commit(1, 3.0)
        auditor.record_commit(2, 8.0)
        graph = auditor.serialization_graph()
        assert graph[1] == {2}
        assert graph[2] == set()

    def test_shared_accesses_no_edge(self):
        auditor = SerializabilityAuditor()
        auditor.record_access(1, 0, S, 1.0)
        auditor.record_access(2, 0, S, 2.0)
        auditor.record_commit(1, 3.0)
        auditor.record_commit(2, 4.0)
        graph = auditor.serialization_graph()
        assert graph[1] == set() and graph[2] == set()

    def test_cycle_detected(self):
        auditor = SerializabilityAuditor()
        auditor.record_access(1, 0, X, 1.0)
        auditor.record_access(2, 0, X, 2.0)  # 1 -> 2 on file 0
        auditor.record_access(2, 1, X, 3.0)
        auditor.record_access(1, 1, X, 4.0)  # 2 -> 1 on file 1
        auditor.record_commit(1, 10.0)
        auditor.record_commit(2, 11.0)
        assert not auditor.is_serializable()
        cycle = auditor.find_cycle()
        assert set(cycle) >= {1, 2}

    def test_three_way_cycle(self):
        auditor = SerializabilityAuditor()
        pairs = [(1, 2, 0), (2, 3, 1), (3, 1, 2)]
        t = 0.0
        for first, second, file_id in pairs:
            auditor.record_access(first, file_id, X, t)
            auditor.record_access(second, file_id, X, t + 1)
            t += 10
        for txn_id in (1, 2, 3):
            auditor.record_commit(txn_id, 100.0 + txn_id)
        assert not auditor.is_serializable()

    def test_simultaneous_conflicts_ordered_by_commit(self):
        auditor = SerializabilityAuditor()
        auditor.record_access(1, 0, X, 5.0)
        auditor.record_access(2, 0, X, 5.0)  # same instant
        auditor.record_commit(1, 10.0)
        auditor.record_commit(2, 20.0)
        graph = auditor.serialization_graph()
        assert graph[1] == {2}


class TestDeferredWrites:
    def test_read_before_deferred_write_orders_by_commit(self):
        """Under OCC a read at t=5 of a file 'written' at t=2 by a still-
        uncommitted writer actually reads the pre-image: reader precedes
        writer when the write only becomes visible at the later commit."""
        auditor = SerializabilityAuditor(deferred_writes=True)
        auditor.record_access(2, 0, X, 2.0)  # T2 writes (workspace)
        auditor.record_access(1, 0, S, 5.0)  # T1 reads pre-image
        auditor.record_commit(1, 6.0)
        auditor.record_commit(2, 7.0)  # write visible here
        graph = auditor.serialization_graph()
        assert graph[1] == {2}
        assert auditor.is_serializable()

    def test_in_place_semantics_differ(self):
        """Same history under in-place writes is writer-before-reader."""
        auditor = SerializabilityAuditor(deferred_writes=False)
        auditor.record_access(2, 0, X, 2.0)
        auditor.record_access(1, 0, S, 5.0)
        auditor.record_commit(1, 6.0)
        auditor.record_commit(2, 7.0)
        graph = auditor.serialization_graph()
        assert graph[2] == {1}
