"""Unit tests for the file-granule lock table."""

import pytest

from repro.core import LockError, LockTable
from repro.txn import AccessMode

S = AccessMode.SHARED
X = AccessMode.EXCLUSIVE


@pytest.fixture
def table():
    return LockTable(num_files=4)


class TestConstruction:
    def test_needs_at_least_one_file(self):
        with pytest.raises(ValueError):
            LockTable(0)

    def test_out_of_range_file(self, table):
        with pytest.raises(ValueError):
            table.is_compatible(4, S)
        with pytest.raises(ValueError):
            table.is_compatible(-1, S)


class TestCompatibility:
    def test_free_lock_compatible_with_anything(self, table):
        assert table.is_compatible(0, S)
        assert table.is_compatible(0, X)

    def test_shared_holders_admit_shared(self, table):
        table.grant(1, 0, S)
        table.grant(2, 0, S)
        assert table.is_compatible(0, S)
        assert len(table.holders(0)) == 2

    def test_shared_holder_blocks_exclusive(self, table):
        table.grant(1, 0, S)
        assert not table.is_compatible(0, X)

    def test_exclusive_holder_blocks_everything(self, table):
        table.grant(1, 0, X)
        assert not table.is_compatible(0, S)
        assert not table.is_compatible(0, X)


class TestGrantRelease:
    def test_grant_records_holder_and_mode(self, table):
        table.grant(1, 2, X)
        assert table.holds(1, 2)
        assert table.mode_of(2) is X
        assert table.holders(2) == {1}

    def test_incompatible_grant_raises(self, table):
        table.grant(1, 0, X)
        with pytest.raises(LockError):
            table.grant(2, 0, S)

    def test_double_grant_raises(self, table):
        table.grant(1, 0, S)
        with pytest.raises(LockError):
            table.grant(1, 0, S)

    def test_upgrade_rejected(self, table):
        """Transactions request their strongest mode up front; the table
        treats a second grant (even stronger) as a bug."""
        table.grant(1, 0, S)
        with pytest.raises(LockError):
            table.grant(1, 0, X)

    def test_release_frees_lock(self, table):
        table.grant(1, 0, X)
        table.release(1, 0)
        assert table.mode_of(0) is None
        assert table.is_compatible(0, X)

    def test_release_unheld_raises(self, table):
        with pytest.raises(LockError):
            table.release(1, 0)

    def test_partial_release_keeps_mode(self, table):
        table.grant(1, 0, S)
        table.grant(2, 0, S)
        table.release(1, 0)
        assert table.mode_of(0) is S
        assert table.holders(0) == {2}

    def test_release_all(self, table):
        table.grant(1, 0, X)
        table.grant(1, 2, S)
        table.grant(2, 3, X)
        released = table.release_all(1)
        assert sorted(released) == [0, 2]
        assert not table.holds(1, 0)
        assert table.holds(2, 3)

    def test_release_all_with_nothing_held(self, table):
        assert table.release_all(9) == []

    def test_files_held_by(self, table):
        table.grant(1, 1, S)
        table.grant(1, 3, X)
        assert table.files_held_by(1) == [1, 3]


class TestSparseRepresentation:
    """The table stores held files only -- size follows holdings, not
    ``num_files`` (regression tests for the sparse rewrite)."""

    def test_huge_table_constructs_without_per_file_state(self):
        # a dense list of 10**9 FileLocks would exhaust memory; the
        # sparse table allocates nothing per file
        table = LockTable(num_files=10**9)
        assert table._locks == {}
        assert table._held_by == {}
        assert table.held_count() == 0

    def test_huge_table_grant_release_roundtrip(self):
        table = LockTable(num_files=10**9)
        table.grant(1, 999_999_999, X)
        assert table.held_count() == 1
        assert table.holds(1, 999_999_999)
        table.release(1, 999_999_999)
        assert table.held_count() == 0
        assert table._locks == {}

    def test_held_count_tracks_table_size_exactly(self, table):
        assert table.held_count() == 0
        table.grant(1, 0, X)
        table.grant(1, 2, S)
        table.grant(2, 2, S)  # second holder, same file
        assert table.held_count() == 2
        assert table.held_count() == len(table._locks)
        table.release(1, 2)
        assert table.held_count() == 2  # T2 still holds F2
        table.release(2, 2)
        assert table.held_count() == 1

    def test_release_all_sorted_and_state_dropped(self, table):
        table.grant(1, 3, S)
        table.grant(1, 0, X)
        table.grant(1, 2, S)
        assert table.release_all(1) == [0, 2, 3]
        assert table.held_count() == 0
        assert 1 not in table._held_by

    def test_free_files_never_materialise_entries(self, table):
        table.is_compatible(3, X)
        assert table.holders(3) == set()
        assert table.mode_of(3) is None
        assert table._locks == {}
