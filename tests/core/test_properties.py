"""Hypothesis property tests on the core data structures.

These complement the example-based tests with randomized invariants:
the WTPG never contains a precedence cycle while driven through its
public grant API, weights follow the declared-cost arithmetic, the lock
table conserves holders, and randomized mini-simulations stay
serializable and conserve transactions.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core import LockTable, SerializabilityAuditor, WTPG
from repro.machine import MachineConfig
from repro.sim.simulation import Simulation
from repro.txn import AccessMode, BatchTransaction, Step
from repro.txn.workload import Workload
from repro.txn.pattern import Pattern, PatternStep


# -- strategies ---------------------------------------------------------------

def txn_strategy(txn_id, num_files=4):
    """A random batch transaction over a small file pool."""
    step = st.tuples(
        st.integers(min_value=0, max_value=num_files - 1),
        st.sampled_from([AccessMode.SHARED, AccessMode.EXCLUSIVE]),
        st.floats(min_value=0.0, max_value=5.0),
    )
    return st.lists(step, min_size=1, max_size=4).map(
        lambda steps: BatchTransaction(
            txn_id,
            [Step(f, m, c) for f, m, c in steps],
            arrival_time=0.0,
        )
    )


class TestWTPGInvariants:
    @settings(max_examples=150, deadline=None)
    @given(data=st.data(), n=st.integers(min_value=2, max_value=5))
    def test_grants_never_create_cycles(self, data, n):
        """Drive a WTPG through add/grant in random order; whenever
        creates_cycle says a grant is safe, applying it must keep the
        precedence relation acyclic (critical path stays finite)."""
        wtpg = WTPG()
        txns = [data.draw(txn_strategy(i), label=f"txn{i}") for i in range(n)]
        for txn in txns:
            wtpg.add_transaction(txn)
        requests = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=3),
                ),
                max_size=12,
            ),
            label="requests",
        )
        for txn_index, file_id in requests:
            txn = txns[txn_index]
            if file_id not in txn.read_set:
                continue
            fixes = wtpg.fixes_for_grant(txn.txn_id, file_id)
            if wtpg.creates_cycle(fixes):
                continue  # a real scheduler would delay
            wtpg.grant(txn.txn_id, file_id)
            assert not math.isinf(wtpg.critical_path_length())

    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_conflict_edges_match_declared_conflicts(self, data):
        wtpg = WTPG()
        a = data.draw(txn_strategy(1))
        b = data.draw(txn_strategy(2))
        wtpg.add_transaction(a)
        wtpg.add_transaction(b)
        assert wtpg.has_conflict_edge(1, 2) == a.conflicts_with(b)

    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_edge_weights_equal_remaining_cost_from_blocked_step(self, data):
        wtpg = WTPG()
        a = data.draw(txn_strategy(1))
        b = data.draw(txn_strategy(2))
        wtpg.add_transaction(a)
        wtpg.add_transaction(b)
        if not a.conflicts_with(b):
            return
        edge = wtpg.conflict_edge(1, 2)
        expected_ab = b.declared_cost_from_step(b.blocked_step_against(a))
        expected_ba = a.declared_cost_from_step(a.blocked_step_against(b))
        assert edge.weight(1, 2) == expected_ab
        assert edge.weight(2, 1) == expected_ba

    @settings(max_examples=100, deadline=None)
    @given(data=st.data(), n=st.integers(min_value=1, max_value=5))
    def test_removal_leaves_no_dangling_edges(self, data, n):
        wtpg = WTPG()
        txns = [data.draw(txn_strategy(i)) for i in range(n)]
        for txn in txns:
            wtpg.add_transaction(txn)
        for txn in txns:
            wtpg.remove_transaction(txn.txn_id)
            assert txn.txn_id not in wtpg
            for edge in wtpg.conflict_edges():
                assert txn.txn_id not in (edge.a, edge.b)
            for (i, j) in wtpg.precedence_edges():
                assert txn.txn_id not in (i, j)
        assert len(wtpg) == 0


class TestLockTableInvariants:
    @settings(max_examples=150, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["grant", "release"]),
                st.integers(min_value=1, max_value=4),  # txn
                st.integers(min_value=0, max_value=3),  # file
                st.sampled_from([AccessMode.SHARED, AccessMode.EXCLUSIVE]),
            ),
            max_size=30,
        )
    )
    def test_mode_consistency_under_random_ops(self, ops):
        """Apply random (legal) grants/releases; the table must always
        satisfy: X-held files have exactly one holder, S-held files have
        >= 1, free files have mode None."""
        table = LockTable(4)
        for op, txn, file_id, mode in ops:
            if op == "grant":
                if table.is_compatible(file_id, mode) and not table.holds(
                    txn, file_id
                ):
                    table.grant(txn, file_id, mode)
            else:
                if table.holds(txn, file_id):
                    table.release(txn, file_id)
            for f in range(4):
                holders = table.holders(f)
                held_mode = table.mode_of(f)
                if not holders:
                    assert held_mode is None
                elif held_mode is AccessMode.EXCLUSIVE:
                    assert len(holders) == 1
                else:
                    assert held_mode is AccessMode.SHARED


def tiny_workload(rate, num_files, write_heavy):
    """A 2-step workload over a small pool (hypothesis-driven shape)."""
    mode = AccessMode.EXCLUSIVE if write_heavy else AccessMode.SHARED
    pattern = Pattern(
        [
            PatternStep("A", AccessMode.EXCLUSIVE, 1.0),
            PatternStep("B", mode, 2.0),
        ]
    )

    def choose(streams):
        a, b = streams.sample_without_replacement("files", range(num_files), 2)
        return {"A": a, "B": b}

    return Workload(pattern, choose, rate, name="tiny")


class TestSimulationInvariants:
    @settings(max_examples=8, deadline=None)
    @given(
        scheduler=st.sampled_from(["ASL", "C2PL", "LOW", "GOW", "2PL"]),
        seed=st.integers(min_value=0, max_value=1000),
        write_heavy=st.booleans(),
    )
    def test_random_runs_serializable_and_conserving(
        self, scheduler, seed, write_heavy
    ):
        auditor = SerializabilityAuditor()
        sim = Simulation(
            MachineConfig(num_files=6, dd=1),
            tiny_workload(0.8, 6, write_heavy),
            scheduler=scheduler,
            seed=seed,
            duration_ms=80_000,
            auditor=auditor,
        )
        result = sim.run()
        # conservation: commits counted == auditor commits == metric
        assert result.completed == auditor.committed_count
        # serializability for every real scheduler
        assert auditor.is_serializable(), (
            scheduler,
            seed,
            auditor.find_cycle(),
        )
        # no lingering lock holders beyond in-flight transactions
        held = {
            holder
            for f in range(6)
            for holder in sim.scheduler.lock_table.holders(f)
        }
        assert len(held) <= result.in_flight_at_end + 1


class TestWTPGMaintainedState:
    @settings(max_examples=100, deadline=None)
    @given(data=st.data(), n=st.integers(min_value=2, max_value=6))
    def test_invariants_hold_under_random_driving(self, data, n):
        """Adjacency mirrors the edge dicts and the level invariant
        (level(u) < level(v) per edge) survives adds, grants, removals."""
        wtpg = WTPG()
        txns = [data.draw(txn_strategy(i), label=f"txn{i}") for i in range(n)]
        alive = []
        ops = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from(["add", "grant", "remove"]),
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=3),
                ),
                max_size=25,
            ),
            label="ops",
        )
        for op, index, file_id in ops:
            txn = txns[index]
            if op == "add" and txn.txn_id not in wtpg:
                wtpg.add_transaction(txn)
                alive.append(txn.txn_id)
            elif op == "grant" and txn.txn_id in wtpg:
                if file_id in txn.read_set:
                    fixes = wtpg.fixes_for_grant(txn.txn_id, file_id)
                    if not wtpg.creates_cycle(fixes):
                        wtpg.grant(txn.txn_id, file_id)
            elif op == "remove" and txn.txn_id in wtpg:
                wtpg.remove_transaction(txn.txn_id)
                alive.remove(txn.txn_id)
            wtpg.check_invariants()

    @settings(max_examples=100, deadline=None)
    @given(data=st.data(), n=st.integers(min_value=2, max_value=5))
    def test_level_pruned_path_query_matches_exhaustive_search(self, data, n):
        """has_path (level-pruned) agrees with a naive DFS over the
        precedence edges."""
        wtpg = WTPG()
        txns = [data.draw(txn_strategy(i)) for i in range(n)]
        for txn in txns:
            wtpg.add_transaction(txn)
        grants = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=3),
                ),
                max_size=10,
            )
        )
        for index, file_id in grants:
            txn = txns[index]
            if file_id in txn.read_set:
                fixes = wtpg.fixes_for_grant(txn.txn_id, file_id)
                if not wtpg.creates_cycle(fixes):
                    wtpg.grant(txn.txn_id, file_id)

        def naive_has_path(src, dst):
            if src == dst:
                return True
            seen, stack = {src}, [src]
            while stack:
                node = stack.pop()
                for (i, j) in wtpg.precedence_edges():
                    if i == node and j not in seen:
                        if j == dst:
                            return True
                        seen.add(j)
                        stack.append(j)
            return False

        for src in range(n):
            for dst in range(n):
                assert wtpg.has_path(src, dst) == naive_has_path(src, dst), (
                    src,
                    dst,
                )
