"""Tests for LOW-LB, the resource-aware LOW extension."""

import pytest

from repro.core import LOWLBScheduler, ResourceAwareWTPG, SerializabilityAuditor
from repro.des import Environment
from repro.machine import ControlNode, MachineConfig, SharedNothingMachine
from repro.machine.data_node import Cohort
from repro.sim import run_simulation
from repro.txn import AccessMode, BatchTransaction, Step, experiment1_workload


def make_txn(txn_id, spec):
    steps = [
        Step(f, AccessMode.EXCLUSIVE if op == "w" else AccessMode.SHARED, c)
        for f, op, c in spec
    ]
    return BatchTransaction(txn_id, steps, 0.0)


class TestResourceAwareWTPG:
    def test_rho_zero_equals_plain_weight(self):
        wtpg = ResourceAwareWTPG(lambda n: 100.0, lambda f: [0], rho=0.0)
        txn = make_txn(1, [(0, "w", 5.0)])
        wtpg.add_transaction(txn)
        assert wtpg.t0_weight(1) == pytest.approx(5.0)

    def test_backlog_inflates_t0_weight(self):
        wtpg = ResourceAwareWTPG(lambda n: 3.0, lambda f: [0, 1], rho=1.0)
        txn = make_txn(1, [(0, "w", 5.0)])
        wtpg.add_transaction(txn)
        # mean backlog over the step's nodes = 3.0
        assert wtpg.t0_weight(1) == pytest.approx(8.0)

    def test_rho_scales_backlog(self):
        wtpg = ResourceAwareWTPG(lambda n: 4.0, lambda f: [0], rho=0.5)
        txn = make_txn(1, [(0, "w", 5.0)])
        wtpg.add_transaction(txn)
        assert wtpg.t0_weight(1) == pytest.approx(7.0)

    def test_negative_rho_rejected(self):
        with pytest.raises(ValueError):
            ResourceAwareWTPG(lambda n: 0.0, lambda f: [0], rho=-1.0)

    def test_scratch_copy_keeps_resource_awareness(self):
        """Hypothetical E() evaluations must use the same weighting."""
        wtpg = ResourceAwareWTPG(lambda n: 3.0, lambda f: [0], rho=1.0)
        t1 = make_txn(1, [(0, "w", 5.0)])
        t2 = make_txn(2, [(0, "w", 1.0)])
        wtpg.add_transaction(t1)
        wtpg.add_transaction(t2)
        scratch = wtpg._scratch_copy()
        assert isinstance(scratch, ResourceAwareWTPG)
        assert scratch.t0_weight(1) == wtpg.t0_weight(1)


class TestLOWLBScheduler:
    def test_unbound_scheduler_sees_zero_backlog(self):
        env = Environment()
        config = MachineConfig()
        scheduler = LOWLBScheduler(env, config, ControlNode(env, config))
        assert scheduler._backlog_of_node(0) == 0.0
        assert scheduler._nodes_of_file(0) == []

    def test_bound_scheduler_reads_machine_backlog(self):
        env = Environment()
        config = MachineConfig(dd=1)
        machine = SharedNothingMachine(env, config)
        scheduler = LOWLBScheduler(env, config, machine.control_node)
        scheduler.bind_machine(machine)
        cohort = Cohort(env, txn_id=1, file_id=0, node_id=0,
                        objects=4.0, quantum_objects=1.0)
        machine.data_nodes[0].submit(cohort)
        assert scheduler._backlog_of_node(0) == pytest.approx(4.0)
        assert scheduler._nodes_of_file(0) == [0]

    def test_registry_name(self):
        from repro.core import available

        assert "LOW-LB" in available()

    def test_simulation_runs_and_stays_serializable(self):
        auditor = SerializabilityAuditor()
        result = run_simulation(
            "LOW-LB",
            experiment1_workload(0.6),
            MachineConfig(dd=1, num_files=16),
            seed=2,
            duration_ms=300_000,
            auditor=auditor,
        )
        assert result.completed > 20
        assert result.scheduler == "LOW-LB"
        assert auditor.is_serializable(), auditor.find_cycle()

    def test_tracks_plain_low_on_uniform_load(self):
        """With uniform file access the backlog term is symmetric, so
        LOW-LB should perform like LOW (sanity: the extension does not
        wreck the base policy)."""
        kwargs = dict(
            config=MachineConfig(dd=1, num_files=16),
            seed=2,
            duration_ms=300_000,
            warmup_ms=50_000,
        )
        low = run_simulation("LOW", experiment1_workload(0.8), **kwargs)
        lb = run_simulation("LOW-LB", experiment1_workload(0.8), **kwargs)
        assert lb.throughput_tps > low.throughput_tps * 0.8
