"""Unit and property tests for the chain-form machinery (GOW's core)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import WTPG
from repro.core.chain import (
    LEFT,
    RIGHT,
    ChainComponent,
    ChainEdge,
    NotChainFormError,
    brute_force_component,
    compute_optimal_order,
    extract_components,
    is_union_of_paths,
    keeps_chain_form,
    solve_component,
    _orientation_value,
)
from repro.txn import AccessMode, BatchTransaction, Step


def txn(txn_id, spec, arrival=0.0):
    steps = [
        Step(f, AccessMode.EXCLUSIVE if op == "w" else AccessMode.SHARED, c)
        for f, op, c in spec
    ]
    return BatchTransaction(txn_id, steps, arrival)


def free_edge(left, right, w_right, w_left):
    return ChainEdge(left, right, w_right, w_left, frozenset({RIGHT, LEFT}))


def component(node_weights, edges):
    return ChainComponent(
        nodes=list(range(len(node_weights))),
        node_weights=list(node_weights),
        edges=edges,
    )


class TestUnionOfPaths:
    def test_empty_graph_is_chain(self):
        assert is_union_of_paths({})

    def test_single_node(self):
        assert is_union_of_paths({1: set()})

    def test_path_of_three(self):
        assert is_union_of_paths({1: {2}, 2: {1, 3}, 3: {2}})

    def test_star_is_not_chain(self):
        assert not is_union_of_paths({1: {2, 3, 4}, 2: {1}, 3: {1}, 4: {1}})

    def test_triangle_is_not_chain(self):
        assert not is_union_of_paths({1: {2, 3}, 2: {1, 3}, 3: {1, 2}})

    def test_two_disjoint_paths(self):
        assert is_union_of_paths({1: {2}, 2: {1}, 3: {4}, 4: {3}, 5: set()})


class TestKeepsChainForm:
    def test_first_transaction_always_ok(self):
        wtpg = WTPG()
        assert keeps_chain_form(wtpg, txn(1, [(0, "w", 1.0)]))

    def test_extending_a_path_end_ok(self):
        wtpg = WTPG()
        wtpg.add_transaction(txn(1, [(0, "w", 1.0)]))
        wtpg.add_transaction(txn(2, [(0, "w", 1.0), (1, "w", 1.0)]))
        newcomer = txn(3, [(1, "w", 1.0)])  # conflicts only with T2
        assert keeps_chain_form(wtpg, newcomer)

    def test_conflicting_with_middle_fails(self):
        wtpg = WTPG()
        wtpg.add_transaction(txn(1, [(0, "w", 1.0)]))
        wtpg.add_transaction(txn(2, [(0, "w", 1.0), (1, "w", 1.0)]))
        wtpg.add_transaction(txn(3, [(1, "w", 1.0), (2, "w", 1.0)]))
        # T2 is interior (degree 2); a newcomer touching file 0 and 1
        # would give T2 degree 3
        newcomer = txn(4, [(0, "w", 1.0), (1, "w", 1.0)])
        assert not keeps_chain_form(wtpg, newcomer)

    def test_closing_a_cycle_fails(self):
        wtpg = WTPG()
        wtpg.add_transaction(txn(1, [(0, "w", 1.0)]))
        wtpg.add_transaction(txn(2, [(0, "w", 1.0), (1, "w", 1.0)]))
        wtpg.add_transaction(txn(3, [(1, "w", 1.0), (2, "w", 1.0)]))
        # newcomer conflicts with both ends T1 (file 0) and T3 (file 2)
        newcomer = txn(4, [(0, "w", 1.0), (2, "w", 1.0)])
        assert not keeps_chain_form(wtpg, newcomer)

    def test_isolated_newcomer_ok(self):
        wtpg = WTPG()
        wtpg.add_transaction(txn(1, [(0, "w", 1.0)]))
        assert keeps_chain_form(wtpg, txn(2, [(5, "w", 1.0)]))


class TestExtractComponents:
    def test_empty(self):
        assert extract_components(WTPG()) == []

    def test_singleton_component(self):
        wtpg = WTPG()
        wtpg.add_transaction(txn(1, [(0, "w", 2.0)]))
        comps = extract_components(wtpg)
        assert len(comps) == 1
        assert comps[0].nodes == [1]
        assert comps[0].node_weights == [2.0]
        assert comps[0].edges == []

    def test_path_ordering_and_weights(self):
        wtpg = WTPG()
        t1 = txn(1, [(0, "w", 2.0)])
        t2 = txn(2, [(0, "w", 3.0), (1, "w", 1.0)])
        t3 = txn(3, [(1, "w", 5.0)])
        for t in (t1, t2, t3):
            wtpg.add_transaction(t)
        comps = extract_components(wtpg)
        assert len(comps) == 1
        nodes = comps[0].nodes
        assert nodes in ([1, 2, 3], [3, 2, 1])  # a path has two ends

    def test_precedence_edges_are_direction_constrained(self):
        wtpg = WTPG()
        t1 = txn(1, [(0, "w", 2.0)])
        t2 = txn(2, [(0, "w", 3.0)])
        wtpg.add_transaction(t1)
        wtpg.add_transaction(t2)
        wtpg.apply_fix(1, 2)
        comps = extract_components(wtpg)
        edge = comps[0].edges[0]
        assert len(edge.allowed) == 1

    def test_non_chain_raises(self):
        wtpg = WTPG()
        # star: T1, T2, T3 all conflict with T4 on distinct files
        wtpg.add_transaction(txn(4, [(0, "w", 1), (1, "w", 1), (2, "w", 1)]))
        wtpg.add_transaction(txn(1, [(0, "w", 1)]))
        wtpg.add_transaction(txn(2, [(1, "w", 1)]))
        wtpg.add_transaction(txn(3, [(2, "w", 1)]))
        with pytest.raises(NotChainFormError):
            extract_components(wtpg)


class TestSolveComponent:
    def test_single_node(self):
        value, dirs = solve_component(component([4.0], []))
        assert value == 4.0
        assert dirs == []

    def test_two_nodes_picks_cheaper_orientation(self):
        # orient 0->1: runs max(w0[0]+5, w0[1]) = max(6,1) = 6
        # orient 1->0: max(w0[1]+2, w0[0]) = max(3,1) = 3
        comp = component([1.0, 1.0], [free_edge(0, 1, 5.0, 2.0)])
        value, dirs = solve_component(comp)
        assert value == pytest.approx(3.0)
        assert dirs == [LEFT]

    def test_respects_direction_constraint(self):
        comp = component(
            [1.0, 1.0],
            [ChainEdge(0, 1, 5.0, math.nan, frozenset({RIGHT}))],
        )
        value, dirs = solve_component(comp)
        assert value == pytest.approx(6.0)
        assert dirs == [RIGHT]

    def test_alternating_beats_chain_of_blocking(self):
        """Long same-direction runs accumulate; alternation caps the path."""
        comp = component(
            [1.0, 1.0, 1.0, 1.0],
            [
                free_edge(0, 1, 3.0, 3.0),
                free_edge(1, 2, 3.0, 3.0),
                free_edge(2, 3, 3.0, 3.0),
            ],
        )
        value, dirs = solve_component(comp)
        # all-right gives 1+9 = 10; alternation gives max single-edge 4
        assert value == pytest.approx(4.0)
        assert dirs[0] != dirs[1] or dirs[1] != dirs[2]

    def test_fig3_example_shape(self):
        """Fig. 3: W = {T1 -> T2, T3 -> T2} makes the shortest critical
        path in a chain T1 - T2 - T3 where T2 is the expensive blocker."""
        wtpg = WTPG()
        t1 = txn(1, [(0, "w", 3.0)])
        t2 = txn(2, [(0, "w", 1.0), (1, "w", 1.0)])
        t3 = txn(3, [(1, "w", 4.0)])
        for t in (t1, t2, t3):
            wtpg.add_transaction(t)
        order = compute_optimal_order(wtpg)
        # unique optimum: orient both edges into T2 (critical path
        # T0 -> T1 -> T2 of length 5, cf. Fig. 3-(b))
        assert order.direction(1, 2) == (1, 2)
        assert order.direction(3, 2) == (3, 2)
        assert order.critical_path == pytest.approx(5.0)

    def test_matches_brute_force_on_fixed_cases(self):
        cases = [
            component([2.0, 5.0, 1.0], [free_edge(0, 1, 1.0, 7.0), free_edge(1, 2, 2.0, 2.0)]),
            component([0.0, 0.0], [free_edge(0, 1, 10.0, 0.5)]),
            component(
                [3.0, 0.0, 4.0, 1.0],
                [
                    free_edge(0, 1, 2.0, 9.0),
                    free_edge(1, 2, 1.0, 1.0),
                    free_edge(2, 3, 8.0, 0.0),
                ],
            ),
        ]
        for comp in cases:
            fast, _ = solve_component(comp)
            slow, _ = brute_force_component(comp)
            assert fast == pytest.approx(slow)

    @settings(max_examples=200, deadline=None)
    @given(
        data=st.data(),
        size=st.integers(min_value=1, max_value=7),
    )
    def test_matches_brute_force_randomised(self, data, size):
        weights = st.floats(min_value=0.0, max_value=20.0)
        node_weights = [data.draw(weights) for _ in range(size)]
        edges = []
        for i in range(size - 1):
            allowed = data.draw(
                st.sampled_from(
                    [frozenset({RIGHT, LEFT}), frozenset({RIGHT}), frozenset({LEFT})]
                )
            )
            wr = data.draw(weights) if RIGHT in allowed else math.nan
            wl = data.draw(weights) if LEFT in allowed else math.nan
            edges.append(ChainEdge(i, i + 1, wr, wl, allowed))
        comp = component(node_weights, edges)
        fast_value, fast_dirs = solve_component(comp)
        slow_value, _ = brute_force_component(comp)
        assert fast_value == pytest.approx(slow_value, abs=1e-6)
        # the reconstructed orientation really achieves the optimum
        achieved = _orientation_value(comp, fast_dirs)
        assert achieved == pytest.approx(fast_value, abs=1e-6)
        # and respects every direction constraint
        for edge, direction in zip(comp.edges, fast_dirs):
            assert direction in edge.allowed


class TestComputeOptimalOrder:
    def test_empty_graph(self):
        order = compute_optimal_order(WTPG())
        assert order.critical_path == 0.0

    def test_unknown_pair_is_vacuously_consistent(self):
        wtpg = WTPG()
        wtpg.add_transaction(txn(1, [(0, "w", 1.0)]))
        order = compute_optimal_order(wtpg)
        assert order.consistent_with_fix(1, 99)

    def test_consistency_check(self):
        wtpg = WTPG()
        t1 = txn(1, [(0, "w", 1.0)])
        t2 = txn(2, [(0, "w", 9.0)])
        wtpg.add_transaction(t1)
        wtpg.add_transaction(t2)
        order = compute_optimal_order(wtpg)
        i, j = order.direction(1, 2)
        assert order.consistent_with_fix(i, j)
        assert not order.consistent_with_fix(j, i)

    def test_multi_component_critical_path_is_max(self):
        wtpg = WTPG()
        wtpg.add_transaction(txn(1, [(0, "w", 2.0)]))
        wtpg.add_transaction(txn(2, [(5, "w", 11.0)]))
        order = compute_optimal_order(wtpg)
        assert order.critical_path == pytest.approx(11.0)
