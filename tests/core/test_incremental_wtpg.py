"""Regression and property tests for the incremental WTPG hot path.

The scheduler hot path maintains topological levels and backward
suffix distances incrementally, evaluates hypothetical grants under an
apply/undo journal, and restricts transitive-fix sweeps to the edges a
new precedence path could force.  These tests pin all three against
their from-scratch references:

* restricted ``propagate_transitive_fixes(touched=...)`` applies the
  same fix list as the original full fixpoint sweep;
* random add/grant/remove sequences keep the maintained structures
  bit-for-bit equal to a scratch recompute (``check_invariants``), the
  critical path equal to an independent longest-path DP, and the
  journal-based hypothetical evaluation equal to the scratch-copy one.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core import WTPG
from repro.txn import AccessMode, BatchTransaction, Step


def make_txn(txn_id, spec):
    """spec: list of (file, 'r'|'w', cost)."""
    steps = [
        Step(f, AccessMode.EXCLUSIVE if op == "w" else AccessMode.SHARED, c)
        for f, op, c in spec
    ]
    return BatchTransaction(txn_id, steps, arrival_time=0.0)


def reference_critical_path(wtpg):
    """Independent longest-path recompute (same DP as the maintained
    suffix distances, evaluated from scratch), inf on a cycle."""
    precedence = wtpg.precedence_edges()
    adjacency = {}
    for (i, j), _ in precedence.items():
        adjacency.setdefault(i, set()).add(j)
    if WTPG._has_cycle(adjacency):
        return math.inf
    longest = {}

    def suffix(node):
        if node in longest:
            return longest[node]
        best = 0.0
        for succ in sorted(adjacency.get(node, ())):
            cand = precedence[(node, succ)] + suffix(succ)
            if cand > best:
                best = cand
        longest[node] = best
        return best

    best = 0.0
    for txn_id in wtpg.txn_ids:
        value = wtpg.t0_weight(txn_id) + suffix(txn_id)
        if value > best:
            best = value
    return best


def graph_state(wtpg):
    """Snapshot of everything a hypothetical evaluation must restore."""
    return (
        dict(wtpg._precedence),
        set(wtpg._conflicts),
        {k: set(v) for k, v in wtpg._succ.items()},
        {k: set(v) for k, v in wtpg._pred.items()},
        dict(wtpg._level),
        dict(wtpg._longest),
    )


class TestRestrictedPropagation:
    """Satellite regression: ``touched``-restricted sweeps apply the
    identical fix list as the original full fixpoint."""

    def _forced_chain(self):
        """T1 -> T2 -> T3 by precedence plus a still-open conflict
        (T1, T3): the Fig. 6 shape where a path forces an edge."""
        wtpg = WTPG()
        wtpg.add_transaction(make_txn(1, [(0, "w", 2.0), (2, "w", 1.0)]))
        wtpg.add_transaction(make_txn(2, [(0, "w", 1.0), (1, "w", 2.0)]))
        wtpg.add_transaction(make_txn(3, [(1, "w", 1.0), (2, "w", 2.0)]))
        return wtpg

    def test_restricted_matches_full_fixpoint(self):
        wtpg = self._forced_chain()
        # grant F0 to T1 and F1 to T2 without propagation, so the
        # conflict edge (T1, T3) is left for the sweep to force
        wtpg.grant(1, 0, propagate=False)
        new_edges = wtpg.grant(2, 1, propagate=False)
        assert new_edges == [(2, 3)]

        full = wtpg._scratch_copy()
        applied_full = full.propagate_transitive_fixes(touched=None)
        applied_restricted = wtpg.propagate_transitive_fixes(
            touched=new_edges
        )

        assert sorted(applied_restricted) == sorted(applied_full)
        assert (1, 3) in [tuple(f) for f in applied_restricted]
        assert wtpg.precedence_edges() == full.precedence_edges()
        assert set(wtpg._conflicts) == set(full._conflicts)
        wtpg.check_invariants()

    def test_restricted_sweep_after_every_grant_is_complete(self):
        """Keeping the graph propagated grant-by-grant (what the
        schedulers do) ends in the same state as one full sweep."""
        wtpg = self._forced_chain()
        reference = wtpg._scratch_copy()
        reference.grant(1, 0, propagate=False)
        reference.grant(2, 1, propagate=False)
        reference.propagate_transitive_fixes(touched=None)

        wtpg.grant(1, 0)  # propagates restricted internally
        wtpg.grant(2, 1)
        assert wtpg.precedence_edges() == reference.precedence_edges()
        assert set(wtpg._conflicts) == set(reference._conflicts)

    def test_empty_touched_is_a_no_op(self):
        wtpg = self._forced_chain()
        assert wtpg.propagate_transitive_fixes(touched=[]) == []


# -- randomized driver --------------------------------------------------------

NUM_FILES = 4

txn_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=NUM_FILES - 1),
        st.sampled_from(["r", "w"]),
        st.floats(min_value=0.0, max_value=5.0),
    ),
    min_size=1,
    max_size=4,
)

# an op is (kind, pick, spec): kind 0 = add, 1 = grant, 2 = remove;
# ``pick`` indexes into the live ids / file pool deterministically
ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=63),
        txn_specs,
    ),
    min_size=1,
    max_size=20,
)


def drive(wtpg, ops, after_each):
    """Interpret a random op sequence against the live graph."""
    next_id = 1
    for kind, pick, spec in ops:
        ids = wtpg.txn_ids
        if kind == 0 or not ids:
            wtpg.add_transaction(make_txn(next_id, spec))
            next_id += 1
        elif kind == 1:
            txn_id = ids[pick % len(ids)]
            file_id = pick % NUM_FILES
            if file_id in wtpg.transaction(txn_id).read_set:
                fixes = wtpg.fixes_for_grant(txn_id, file_id)
                if not wtpg.creates_cycle(fixes):
                    wtpg.grant(txn_id, file_id)
        else:
            wtpg.remove_transaction(ids[pick % len(ids)])
        after_each(wtpg)


class TestIncrementalMatchesRecompute:
    """Satellite property test: the incremental maintenance path agrees
    with the from-scratch references after every operation."""

    @given(ops=ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_levels_suffixes_and_critical_path(self, ops):
        wtpg = WTPG()

        def check(graph):
            graph.check_invariants()  # maintained vs recomputed, exact
            assert graph.critical_path_length() == reference_critical_path(
                graph
            )

        drive(wtpg, ops, check)

    @given(ops=ops_strategy)
    @settings(max_examples=40, deadline=None)
    def test_journal_hypothetical_matches_scratch_copy(self, ops):
        wtpg = WTPG()

        def check(graph):
            for txn_id in graph.txn_ids:
                txn = graph.transaction(txn_id)
                for file_id in txn.files:
                    before = graph_state(graph)
                    value = graph.hypothetical_grant_critical_path(
                        txn_id, file_id
                    )
                    # the journal rolled everything back
                    assert graph_state(graph) == before

                    scratch = graph._scratch_copy()
                    fixes = scratch.fixes_for_grant(txn_id, file_id)
                    if scratch.creates_cycle(fixes):
                        expected = math.inf
                    else:
                        for i, j in fixes:
                            scratch.apply_fix(i, j)
                        scratch.propagate_transitive_fixes(touched=fixes)
                        expected = scratch.critical_path_length()
                    assert value == expected

        drive(wtpg, ops, check)

    @given(ops=ops_strategy)
    @settings(max_examples=40, deadline=None)
    def test_cycle_verdicts_match_full_dfs(self, ops):
        wtpg = WTPG()

        def check(graph):
            for txn_id in graph.txn_ids:
                txn = graph.transaction(txn_id)
                for file_id in txn.files:
                    fixes = graph.fixes_for_grant(txn_id, file_id)
                    adjacency = {
                        node: set(succ)
                        for node, succ in graph._succ.items()
                    }
                    for i, j in fixes:
                        adjacency.setdefault(i, set()).add(j)
                    assert graph.creates_cycle(fixes) == WTPG._has_cycle(
                        adjacency
                    )

        drive(wtpg, ops, check)
