"""Focused unit tests for chain-solver internals."""

import math

import pytest

from repro.core.chain import (
    LEFT,
    RIGHT,
    ChainComponent,
    ChainEdge,
    _candidate_values,
    _feasible,
    _pareto_reduce,
)


def free_edge(left, right, w_right, w_left):
    return ChainEdge(left, right, w_right, w_left, frozenset({RIGHT, LEFT}))


def component(node_weights, edges):
    return ChainComponent(
        nodes=list(range(len(node_weights))),
        node_weights=list(node_weights),
        edges=edges,
    )


class TestChainEdgeValidation:
    def test_empty_direction_set_rejected(self):
        with pytest.raises(ValueError):
            ChainEdge(0, 1, 1.0, 1.0, frozenset())

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError):
            ChainEdge(0, 1, 1.0, 1.0, frozenset({"up"}))


class TestChainComponentValidation:
    def test_weight_count_mismatch(self):
        with pytest.raises(ValueError):
            ChainComponent(nodes=[0, 1], node_weights=[1.0], edges=[])

    def test_edge_count_mismatch(self):
        with pytest.raises(ValueError):
            ChainComponent(nodes=[0, 1], node_weights=[1.0, 1.0], edges=[])


class TestParetoReduce:
    def test_keeps_non_dominated(self):
        frontier = _pareto_reduce([(1.0, 5.0), (2.0, 3.0), (3.0, 1.0)])
        assert frontier == [(1.0, 5.0), (2.0, 3.0), (3.0, 1.0)]

    def test_drops_dominated(self):
        frontier = _pareto_reduce([(1.0, 1.0), (2.0, 2.0), (3.0, 1.5)])
        assert frontier == [(1.0, 1.0)]

    def test_equal_m_keeps_smaller_cum(self):
        frontier = _pareto_reduce([(2.0, 3.0), (1.0, 3.0)])
        assert frontier == [(1.0, 3.0)]

    def test_empty(self):
        assert _pareto_reduce([]) == []


class TestCandidateValues:
    def test_single_node(self):
        comp = component([4.0], [])
        assert _candidate_values(comp) == [4.0]

    def test_includes_node_weights_and_path_sums(self):
        comp = component([1.0, 2.0], [free_edge(0, 1, 10.0, 20.0)])
        values = _candidate_values(comp)
        # node weights 1, 2; rightward 1+10 = 11; leftward 2+20 = 22
        assert set(values) == {1.0, 2.0, 11.0, 22.0}

    def test_respects_direction_constraints(self):
        comp = component(
            [1.0, 2.0],
            [ChainEdge(0, 1, 10.0, math.nan, frozenset({RIGHT}))],
        )
        values = _candidate_values(comp)
        assert 11.0 in values
        assert all(not math.isnan(v) for v in values)

    def test_sorted_output(self):
        comp = component(
            [3.0, 1.0, 2.0],
            [free_edge(0, 1, 1.0, 1.0), free_edge(1, 2, 1.0, 1.0)],
        )
        values = _candidate_values(comp)
        assert values == sorted(values)


class TestFeasibility:
    def test_single_node_threshold(self):
        comp = component([4.0], [])
        assert _feasible(comp, 4.0)
        assert not _feasible(comp, 3.9)

    def test_two_node_choice(self):
        # right: max(1+5, 1) = 6; left: max(1+2, 1) = 3
        comp = component([1.0, 1.0], [free_edge(0, 1, 5.0, 2.0)])
        assert _feasible(comp, 3.0)
        assert not _feasible(comp, 2.9)
        assert _feasible(comp, 6.0)

    def test_forced_direction_changes_feasibility(self):
        comp = component([1.0, 1.0], [free_edge(0, 1, 5.0, 2.0)])
        # forcing RIGHT makes 3.0 infeasible
        assert not _feasible(comp, 3.0, forced={0: RIGHT})
        assert _feasible(comp, 6.0, forced={0: RIGHT})

    def test_forcing_direction_not_allowed_is_infeasible(self):
        comp = component(
            [1.0, 1.0],
            [ChainEdge(0, 1, 5.0, math.nan, frozenset({RIGHT}))],
        )
        assert not _feasible(comp, 100.0, forced={0: LEFT})

    def test_node_weight_alone_bounds_theta(self):
        comp = component([9.0, 1.0], [free_edge(0, 1, 0.0, 0.0)])
        assert not _feasible(comp, 8.0)
        assert _feasible(comp, 9.0)
