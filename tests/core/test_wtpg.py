"""Unit tests for the WTPG, including the paper's own examples."""

import math

import pytest

from repro.core import WTPG
from repro.txn import AccessMode, BatchTransaction, Step


def txn(txn_id, spec, arrival=0.0):
    """spec: list of (file, 'r'|'w', cost)."""
    steps = [
        Step(f, AccessMode.EXCLUSIVE if op == "w" else AccessMode.SHARED, c)
        for f, op, c in spec
    ]
    return BatchTransaction(txn_id, steps, arrival)


# Files named after the paper's Fig. 2: A=0, B=1, C=2.
A, B, C = 0, 1, 2


@pytest.fixture
def fig2():
    """Fig. 2: T1 = r1(A:1) -> r1(B:3) -> w1(A:1);
    T2 = r2(C:1) -> w2(A:1) -> w2(C:1); both just started."""
    wtpg = WTPG()
    t1 = txn(1, [(A, "r", 1.0), (B, "r", 3.0), (A, "w", 1.0)])
    t2 = txn(2, [(C, "r", 1.0), (A, "w", 1.0), (C, "w", 1.0)])
    wtpg.add_transaction(t1)
    wtpg.add_transaction(t2)
    return wtpg, t1, t2


class TestFig2Example:
    def test_conflict_edge_created(self, fig2):
        wtpg, t1, t2 = fig2
        assert wtpg.has_conflict_edge(1, 2)
        assert len(wtpg.conflict_edges()) == 1

    def test_edge_weights_match_paper(self, fig2):
        """The paper: {T1 -> T2} has weight 2 (T2 blocked at w2(A:1) has
        w2(A:1) + w2(C:1) = 2 objects left); {T2 -> T1} has weight 5
        (T1 blocked at its first step r1(A:1), 1+3+1 = 5 left)."""
        wtpg, t1, t2 = fig2
        edge = wtpg.conflict_edge(1, 2)
        assert edge.weight(1, 2) == pytest.approx(2.0)
        assert edge.weight(2, 1) == pytest.approx(5.0)

    def test_t0_weights_are_full_remaining_cost(self, fig2):
        """Fig. 2-(b): {T0 -> T1} weighs 5, {T0 -> T2} weighs 3."""
        wtpg, t1, t2 = fig2
        assert wtpg.t0_weight(1) == pytest.approx(5.0)
        assert wtpg.t0_weight(2) == pytest.approx(3.0)

    def test_t0_weight_adjusts_with_progress(self, fig2):
        wtpg, t1, t2 = fig2
        t1.advance()  # finished r1(A:1)
        assert wtpg.t0_weight(1) == pytest.approx(4.0)

    def test_critical_path_before_any_fixes(self, fig2):
        """With only conflict edges the critical path is max T0 weight."""
        wtpg, _, _ = fig2
        assert wtpg.critical_path_length() == pytest.approx(5.0)

    def test_fixing_t1_before_t2(self, fig2):
        wtpg, _, _ = fig2
        wtpg.apply_fix(1, 2)
        assert wtpg.has_precedence(1, 2)
        assert not wtpg.has_conflict_edge(1, 2)
        # critical path: T0 -> T1 -> T2 = 5 + 2
        assert wtpg.critical_path_length() == pytest.approx(7.0)


class TestMembership:
    def test_duplicate_add_rejected(self, fig2):
        wtpg, t1, _ = fig2
        with pytest.raises(ValueError):
            wtpg.add_transaction(t1)

    def test_remove_drops_edges(self, fig2):
        wtpg, _, _ = fig2
        wtpg.remove_transaction(1)
        assert 1 not in wtpg
        assert not wtpg.conflict_edges()

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            WTPG().remove_transaction(5)

    def test_len_and_ids(self, fig2):
        wtpg, _, _ = fig2
        assert len(wtpg) == 2
        assert wtpg.txn_ids == [1, 2]

    def test_no_edge_between_nonconflicting(self):
        wtpg = WTPG()
        wtpg.add_transaction(txn(1, [(A, "r", 1.0)]))
        wtpg.add_transaction(txn(2, [(A, "r", 1.0)]))  # S-S: no conflict
        wtpg.add_transaction(txn(3, [(B, "w", 1.0)]))
        assert not wtpg.conflict_edges()
        assert wtpg.neighbors(1) == set()


class TestGrantFixes:
    def test_fixes_for_grant_identifies_conflicting_declarers(self, fig2):
        wtpg, _, _ = fig2
        assert wtpg.fixes_for_grant(1, A) == [(1, 2)]
        # B is only touched by T1: no fix
        assert wtpg.fixes_for_grant(1, B) == []

    def test_grant_applies_fix(self, fig2):
        wtpg, _, _ = fig2
        applied = wtpg.grant(1, A)
        assert (1, 2) in applied
        assert wtpg.has_precedence(1, 2)

    def test_contradicting_grant_detected_as_cycle(self, fig2):
        wtpg, _, _ = fig2
        wtpg.apply_fix(2, 1)
        fixes = wtpg.fixes_for_grant(1, A)
        assert wtpg.creates_cycle(fixes)
        with pytest.raises(ValueError):
            wtpg.grant(1, A)

    def test_apply_fix_idempotent_when_already_fixed(self, fig2):
        wtpg, _, _ = fig2
        wtpg.apply_fix(1, 2)
        wtpg.apply_fix(1, 2)  # no-op
        assert wtpg.has_precedence(1, 2)

    def test_apply_fix_without_edge_raises(self):
        wtpg = WTPG()
        wtpg.add_transaction(txn(1, [(A, "r", 1.0)]))
        wtpg.add_transaction(txn(2, [(B, "w", 1.0)]))
        with pytest.raises(KeyError):
            wtpg.apply_fix(1, 2)


class TestTransitivePropagation:
    def build_fig6(self):
        """Fig. 6-(a): T4 -> T5 fixed, (T5, T6) conflict, T6 -> T7 fixed,
        (T4, T7) conflict.  Weights engineered so the paper's numbers
        come out: w(T4->T7) = 10, w(T6->T7) = 1, T0 weights 0."""
        wtpg = WTPG()
        # shared files: d45=10, d56=11, d67=12, d47=13
        t4 = txn(4, [(10, "w", 0.0), (13, "w", 0.0)])
        t5 = txn(5, [(10, "w", 0.0), (11, "w", 0.0)])
        t6 = txn(6, [(11, "w", 0.0), (12, "w", 0.0)])
        t7 = txn(7, [(13, "w", 9.0), (12, "w", 1.0)])
        for t in (t4, t5, t6, t7):
            # exhaust actual steps so T0 weights are 0 (as in Fig. 6)
            wtpg.add_transaction(t)
        for t in (t4, t5, t6, t7):
            t.current_step_index = len(t.steps)
        wtpg.apply_fix(4, 5)
        wtpg.apply_fix(6, 7)
        return wtpg

    def test_fig6_weights(self):
        """The paper's numbers: w(T4 -> T7) = 10 (T7 blocked at its first
        step, all 10 objects remain); w(T6 -> T7) = 1 (blocked at its
        second step, 1 object remains)."""
        wtpg = self.build_fig6()
        edge = wtpg.conflict_edge(4, 7)
        assert edge.weight(4, 7) == pytest.approx(10.0)
        assert wtpg.precedence_edges()[(6, 7)] == pytest.approx(1.0)

    def test_granting_t5_t6_forces_t4_t7(self):
        """Fig. 6-(b): fixing T5 -> T6 creates the path T4 ~> T7, so the
        conflict edge (T4, T7) must resolve to T4 -> T7."""
        wtpg = self.build_fig6()
        wtpg.apply_fix(5, 6)
        applied = wtpg.propagate_transitive_fixes()
        assert (4, 7) in applied
        assert wtpg.has_precedence(4, 7)

    def test_e_q_matches_paper_values(self):
        """The paper: E(q of T5) = 10 (the forced T4 -> T7 edge) while
        E(p of T6) = 1 ((T4, T7) stays an ignored conflict edge), so LOW
        delays T5's request and prefers T6."""
        wtpg = self.build_fig6()
        e_q = wtpg.hypothetical_grant_critical_path(5, 11)
        e_p = wtpg.hypothetical_grant_critical_path(6, 11)
        assert e_q == pytest.approx(10.0)
        assert e_p == pytest.approx(1.0)
        # the real graph is untouched by hypothetical evaluation
        assert wtpg.has_conflict_edge(5, 6)
        assert wtpg.has_conflict_edge(4, 7)

    def test_hypothetical_deadlock_is_infinite(self, fig2=None):
        wtpg = WTPG()
        t1 = txn(1, [(A, "w", 1.0), (B, "w", 1.0)])
        t2 = txn(2, [(A, "w", 1.0), (B, "w", 1.0)])
        wtpg.add_transaction(t1)
        wtpg.add_transaction(t2)
        wtpg.apply_fix(2, 1)
        assert math.isinf(wtpg.hypothetical_grant_critical_path(1, A))


class TestCriticalPath:
    def test_empty_graph(self):
        assert WTPG().critical_path_length() == 0.0

    def test_chain_of_blocking_lengthens_path(self):
        """A chain T1 -> T2 -> T3 accumulates weights along the path."""
        wtpg = WTPG()
        t1 = txn(1, [(A, "w", 2.0)])
        t2 = txn(2, [(A, "w", 3.0), (B, "w", 1.0)])
        t3 = txn(3, [(B, "w", 5.0)])
        for t in (t1, t2, t3):
            wtpg.add_transaction(t)
        wtpg.apply_fix(1, 2)
        wtpg.apply_fix(2, 3)
        # T0->T1 = 2; w(T1->T2) = 4 (T2 blocked at step 0); w(T2->T3) = 5
        assert wtpg.critical_path_length() == pytest.approx(2 + 4 + 5)

    def test_cycle_gives_infinity(self):
        wtpg = WTPG()
        t1 = txn(1, [(A, "w", 1.0), (B, "w", 1.0)])
        t2 = txn(2, [(A, "w", 1.0), (B, "w", 1.0)])
        wtpg.add_transaction(t1)
        wtpg.add_transaction(t2)
        # force a cycle through internal state (schedulers prevent this)
        wtpg._precedence[(1, 2)] = 1.0
        wtpg._precedence[(2, 1)] = 1.0
        wtpg._succ[1].add(2)
        wtpg._succ[2].add(1)
        wtpg._pred[1].add(2)
        wtpg._pred[2].add(1)
        del wtpg._conflicts[frozenset((1, 2))]
        assert math.isinf(wtpg.critical_path_length())

    def test_has_path(self):
        wtpg = WTPG()
        for i, files in ((1, A), (2, A), (3, B)):
            pass
        t1 = txn(1, [(A, "w", 1.0)])
        t2 = txn(2, [(A, "w", 1.0), (B, "w", 1.0)])
        t3 = txn(3, [(B, "w", 1.0)])
        for t in (t1, t2, t3):
            wtpg.add_transaction(t)
        wtpg.apply_fix(1, 2)
        wtpg.apply_fix(2, 3)
        assert wtpg.has_path(1, 3)
        assert not wtpg.has_path(3, 1)
        assert wtpg.has_path(2, 2)
