"""Tests for the scheduler registry."""

import pytest

from repro.core import (
    C2PLScheduler,
    LOWScheduler,
    PAPER_SCHEDULERS,
    available,
    create,
    register,
)
from repro.core.registry import (
    FAMILIES,
    MODERN_SCHEDULERS,
    entries,
    family_of,
    unregister,
)
from repro.des import Environment
from repro.machine import ControlNode, MachineConfig
from repro.schedulers.modern import (
    ConflictPredictScheduler,
    ConflictReorderScheduler,
    DGCCScheduler,
)


@pytest.fixture
def ctx():
    env = Environment()
    config = MachineConfig()
    return env, config, ControlNode(env, config)


class TestRegistry:
    def test_paper_schedulers_all_registered(self):
        for name in PAPER_SCHEDULERS:
            assert name in available()

    def test_modern_schedulers_all_registered(self):
        for name in MODERN_SCHEDULERS:
            assert name in available()

    def test_create_by_name(self, ctx):
        scheduler = create("C2PL", *ctx)
        assert isinstance(scheduler, C2PLScheduler)

    def test_name_is_case_insensitive(self, ctx):
        assert isinstance(create("c2pl", *ctx), C2PLScheduler)

    def test_default_low_uses_k2(self, ctx):
        scheduler = create("LOW", *ctx)
        assert isinstance(scheduler, LOWScheduler)
        assert scheduler.k == 2

    def test_parameterised_low(self, ctx):
        scheduler = create("LOW(K=5)", *ctx)
        assert scheduler.k == 5
        assert scheduler.name == "LOW(K=5)"

    def test_low_k_zero(self, ctx):
        assert create("LOW(K=0)", *ctx).k == 0

    def test_c2pl_plus_m_alias(self, ctx):
        assert isinstance(create("C2PL+M", *ctx), C2PLScheduler)

    def test_unknown_name_raises(self, ctx):
        with pytest.raises(KeyError):
            create("FANCY", *ctx)

    def test_register_custom(self, ctx):
        class Custom(C2PLScheduler):
            name = "CUSTOM"

        register("CUSTOM", Custom)
        try:
            assert isinstance(create("CUSTOM", *ctx), Custom)
        finally:
            unregister("CUSTOM")

    def test_available_sorted(self):
        names = available()
        assert names == sorted(names)


class TestDuplicateRegistration:
    def test_duplicate_name_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register("C2PL", C2PLScheduler)

    def test_duplicate_allowed_with_replace(self, ctx):
        class Stub(C2PLScheduler):
            name = "STUB"

        register("STUB", C2PLScheduler)
        try:
            register("STUB", Stub, replace=True)
            assert isinstance(create("STUB", *ctx), Stub)
        finally:
            unregister("STUB")

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError, match="unknown family"):
            register("WEIRD", C2PLScheduler, family="vintage")


class TestFamilies:
    def test_every_entry_has_known_family_and_description(self):
        for entry in entries():
            assert entry.family in FAMILIES
            assert entry.description

    def test_entries_grouped_paper_first(self):
        families = [entry.family for entry in entries()]
        rank = {family: i for i, family in enumerate(FAMILIES)}
        assert families == sorted(families, key=rank.__getitem__)

    def test_family_of(self):
        assert family_of("GOW") == "paper"
        assert family_of("2PL") == "extension"
        for name in MODERN_SCHEDULERS:
            assert family_of(name) == "modern"


class TestModernCreation:
    def test_create_modern_by_name(self, ctx):
        assert isinstance(create("DGCC", *ctx), DGCCScheduler)
        assert isinstance(create("CAR", *ctx), ConflictReorderScheduler)
        assert isinstance(create("PRED", *ctx), ConflictPredictScheduler)

    def test_parameterised_dgcc(self, ctx):
        scheduler = create("DGCC(B=16)", *ctx)
        assert isinstance(scheduler, DGCCScheduler)
        assert scheduler.batch_size == 16
        assert scheduler.name == "DGCC(B=16)"

    def test_parameterised_car(self, ctx):
        scheduler = create("CAR(Q=2)", *ctx)
        assert isinstance(scheduler, ConflictReorderScheduler)
        assert scheduler.num_queues == 2
        assert scheduler.name == "CAR(Q=2)"

    def test_parameterised_pred(self, ctx):
        scheduler = create("PRED(T=0.75)", *ctx)
        assert isinstance(scheduler, ConflictPredictScheduler)
        assert scheduler.threshold == 0.75
        assert scheduler.name == "PRED(T=0.75)"

    def test_bad_parameters_raise(self, ctx):
        with pytest.raises(ValueError):
            create("DGCC(B=0)", *ctx)
        with pytest.raises(ValueError):
            create("CAR(Q=0)", *ctx)
        with pytest.raises(ValueError):
            create("PRED(T=1.5)", *ctx)
