"""Tests for the scheduler registry."""

import pytest

from repro.core import (
    C2PLScheduler,
    LOWScheduler,
    PAPER_SCHEDULERS,
    available,
    create,
    register,
)
from repro.core.registry import _FACTORIES
from repro.des import Environment
from repro.machine import ControlNode, MachineConfig


@pytest.fixture
def ctx():
    env = Environment()
    config = MachineConfig()
    return env, config, ControlNode(env, config)


class TestRegistry:
    def test_paper_schedulers_all_registered(self):
        for name in PAPER_SCHEDULERS:
            assert name in available()

    def test_create_by_name(self, ctx):
        scheduler = create("C2PL", *ctx)
        assert isinstance(scheduler, C2PLScheduler)

    def test_name_is_case_insensitive(self, ctx):
        assert isinstance(create("c2pl", *ctx), C2PLScheduler)

    def test_default_low_uses_k2(self, ctx):
        scheduler = create("LOW", *ctx)
        assert isinstance(scheduler, LOWScheduler)
        assert scheduler.k == 2

    def test_parameterised_low(self, ctx):
        scheduler = create("LOW(K=5)", *ctx)
        assert scheduler.k == 5
        assert scheduler.name == "LOW(K=5)"

    def test_low_k_zero(self, ctx):
        assert create("LOW(K=0)", *ctx).k == 0

    def test_c2pl_plus_m_alias(self, ctx):
        assert isinstance(create("C2PL+M", *ctx), C2PLScheduler)

    def test_unknown_name_raises(self, ctx):
        with pytest.raises(KeyError):
            create("FANCY", *ctx)

    def test_register_custom(self, ctx):
        class Custom(C2PLScheduler):
            name = "CUSTOM"

        register("CUSTOM", Custom)
        try:
            assert isinstance(create("CUSTOM", *ctx), Custom)
        finally:
            _FACTORIES.pop("CUSTOM", None)

    def test_available_sorted(self):
        names = available()
        assert names == sorted(names)
