"""Behavioural unit tests for each scheduler, driven by tiny simulations.

These tests exercise each policy's characteristic decisions through the
real lifecycle (admission, lock requests, commit) with deterministic
mini-workloads, rather than poking internal methods.
"""

import pytest

from repro.core import (
    ASLScheduler,
    C2PLScheduler,
    GOWScheduler,
    LOWScheduler,
    NODCScheduler,
    OPTScheduler,
)
from repro.des import Environment
from repro.machine import ControlNode, MachineConfig
from repro.txn import AccessMode, BatchTransaction, Step


def make_txn(txn_id, spec, arrival=0.0):
    steps = [
        Step(f, AccessMode.EXCLUSIVE if op == "w" else AccessMode.SHARED, c)
        for f, op, c in spec
    ]
    return BatchTransaction(txn_id, steps, arrival)


class Harness:
    """Drives scheduler lifecycles as simulation processes."""

    def __init__(self, scheduler_cls, config=None, **scheduler_kwargs):
        self.env = Environment()
        self.config = config or MachineConfig(retry_delay_ms=50.0)
        self.cn = ControlNode(self.env, self.config)
        self.scheduler = scheduler_cls(
            self.env, self.config, self.cn, **scheduler_kwargs
        )
        self.trace = []

    def lifecycle(self, txn, hold_ms=100.0):
        """Admit, acquire each file at first need, hold, then commit."""

        def proc():
            yield from self.scheduler.admit(txn)
            self.trace.append((self.env.now, "admitted", txn.txn_id))
            for file_id in txn.files:
                yield from self.scheduler.acquire(txn, file_id)
                self.trace.append((self.env.now, "locked", txn.txn_id, file_id))
            yield self.env.timeout(hold_ms)
            if self.scheduler.validate_at_commit(txn):
                yield from self.scheduler.commit(txn)
                self.trace.append((self.env.now, "committed", txn.txn_id))
            else:
                yield from self.scheduler.abort(txn)
                self.trace.append((self.env.now, "aborted", txn.txn_id))

        return self.env.process(proc(), name=f"txn-{txn.txn_id}")

    def run(self, until=None):
        self.env.run(until=until)

    def events(self, kind):
        return [t for t in self.trace if t[1] == kind]


class TestNODC:
    def test_everything_granted_immediately(self):
        h = Harness(NODCScheduler)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]))
        h.lifecycle(make_txn(2, [(0, "w", 1.0)]))
        h.run()
        # both hold "locks" on file 0 simultaneously: committed at same time
        commits = h.events("committed")
        assert len(commits) == 2
        assert commits[0][0] == commits[1][0] == pytest.approx(100.0)


class TestASL:
    def test_all_locks_at_start(self):
        h = Harness(ASLScheduler)
        t = make_txn(1, [(0, "r", 1.0), (1, "w", 1.0)])
        h.lifecycle(t)
        h.run()
        admitted = h.events("admitted")[0][0]
        locked = [e[0] for e in h.events("locked")]
        assert all(when == admitted for when in locked)

    def test_conflicting_transaction_waits_for_commit(self):
        h = Harness(ASLScheduler)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]), hold_ms=100)
        h.lifecycle(make_txn(2, [(0, "w", 1.0)]), hold_ms=100)
        h.run()
        admits = {e[2]: e[0] for e in h.events("admitted")}
        assert admits[1] == 0.0
        assert admits[2] == pytest.approx(100.0)  # at T1's commit

    def test_partial_overlap_blocks_whole_set(self):
        """T2 needs files {1, 2}; T1 holds 1: T2 gets *neither* lock."""
        h = Harness(ASLScheduler)
        h.lifecycle(make_txn(1, [(1, "w", 1.0)]), hold_ms=100)
        h.lifecycle(make_txn(2, [(1, "w", 1.0), (2, "w", 1.0)]), hold_ms=10)
        h.run(until=50)
        assert not h.scheduler.lock_table.holders(2)

    def test_nonconflicting_start_together(self):
        h = Harness(ASLScheduler)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]))
        h.lifecycle(make_txn(2, [(1, "w", 1.0)]))
        h.run()
        admits = [e[0] for e in h.events("admitted")]
        assert admits == [0.0, 0.0]

    def test_greedy_skip_over_small_transaction(self):
        """A newcomer whose locks are free starts even while an older
        transaction is still waiting (no head-of-line blocking)."""
        h = Harness(ASLScheduler)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]), hold_ms=200)
        h.lifecycle(make_txn(2, [(0, "w", 1.0), (5, "w", 1.0)]), hold_ms=10)
        h.lifecycle(make_txn(3, [(7, "w", 1.0)]), hold_ms=10)
        h.run()
        admits = {e[2]: e[0] for e in h.events("admitted")}
        assert admits[3] == 0.0  # did not queue behind T2


class TestC2PL:
    def test_incremental_locking(self):
        """Unlike ASL, C2PL locks at each step's first need."""
        h = Harness(C2PLScheduler)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]), hold_ms=100)
        h.lifecycle(make_txn(2, [(1, "w", 1.0), (0, "w", 1.0)]), hold_ms=10)
        h.run(until=50)
        # T2 admitted and holds file 1 while blocked on file 0
        assert h.scheduler.lock_table.holds(2, 1)
        assert not h.scheduler.lock_table.holds(2, 0)

    def test_deadlock_avoided_by_delay(self):
        """T1: A then B; T2: B then A.  Cautious C2PL must not deadlock."""
        h = Harness(C2PLScheduler)
        t1 = make_txn(1, [(0, "w", 1.0), (1, "w", 1.0)])
        t2 = make_txn(2, [(1, "w", 1.0), (0, "w", 1.0)])
        h.lifecycle(t1, hold_ms=50)
        h.lifecycle(t2, hold_ms=50)
        h.run()
        assert len(h.events("committed")) == 2

    def test_blocked_request_granted_on_release(self):
        h = Harness(C2PLScheduler)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]), hold_ms=100)
        h.lifecycle(make_txn(2, [(0, "w", 1.0)]), hold_ms=50)
        h.run()
        commits = {e[2]: e[0] for e in h.events("committed")}
        assert commits[2] > commits[1]

    def test_mpl_gate_limits_active_transactions(self):
        config = MachineConfig(mpl=1, retry_delay_ms=50.0)
        h = Harness(C2PLScheduler, config=config)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]), hold_ms=100)
        h.lifecycle(make_txn(2, [(1, "w", 1.0)]), hold_ms=100)
        h.run()
        admits = {e[2]: e[0] for e in h.events("admitted")}
        # non-conflicting, but MPL=1 serialises them
        assert admits[2] >= 100.0


class TestOPT:
    def test_no_locks_taken(self):
        h = Harness(OPTScheduler)
        t = make_txn(1, [(0, "w", 1.0)])
        h.lifecycle(t)
        h.run()
        assert h.scheduler.lock_table.files_held_by(1) == []

    def test_validation_fails_on_concurrent_conflicting_commit(self):
        h = Harness(OPTScheduler)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]), hold_ms=50)
        h.lifecycle(make_txn(2, [(0, "w", 1.0)]), hold_ms=100)
        h.run()
        assert [e[2] for e in h.events("committed")] == [1]
        assert [e[2] for e in h.events("aborted")] == [2]

    def test_validation_passes_without_conflicts(self):
        h = Harness(OPTScheduler)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]), hold_ms=50)
        h.lifecycle(make_txn(2, [(1, "w", 1.0)]), hold_ms=100)
        h.run()
        assert len(h.events("committed")) == 2

    def test_read_read_overlap_is_fine(self):
        h = Harness(OPTScheduler)
        h.lifecycle(make_txn(1, [(0, "r", 1.0)]), hold_ms=50)
        h.lifecycle(make_txn(2, [(0, "r", 1.0)]), hold_ms=100)
        h.run()
        assert len(h.events("committed")) == 2

    def test_writer_committing_during_reader_aborts_reader(self):
        h = Harness(OPTScheduler)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]), hold_ms=50)  # writer
        h.lifecycle(make_txn(2, [(0, "r", 1.0)]), hold_ms=100)  # reader
        h.run()
        assert [e[2] for e in h.events("aborted")] == [2]


class TestLOW:
    def test_k_conflict_limits_admission(self):
        """With K=0 no two conflicting transactions may be active."""
        h = Harness(LOWScheduler, k=0)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]), hold_ms=100)
        h.lifecycle(make_txn(2, [(0, "w", 1.0)]), hold_ms=10)
        h.run()
        admits = {e[2]: e[0] for e in h.events("admitted")}
        assert admits[2] >= 100.0

    def test_k2_admits_up_to_three_conflicting_writers(self):
        h = Harness(LOWScheduler, k=2)
        for txn_id in (1, 2, 3, 4):
            h.lifecycle(make_txn(txn_id, [(0, "w", 1.0)]), hold_ms=100)
        h.run(until=99)
        admitted = {e[2] for e in h.events("admitted")}
        assert admitted == {1, 2, 3}  # the 4th exceeds every |C(q)| <= 2

    def test_prefers_cheap_transaction(self):
        """E discriminates when the conflict sits at the heavy
        transaction's *last* step: granting heavy makes the path
        T0 -> heavy -> light (50 + 1 = 51) while granting light leaves
        max(T0 -> heavy, T0 -> light -> heavy) = 50, so heavy is delayed
        even though it asked first."""
        h = Harness(LOWScheduler, k=2)
        heavy = make_txn(1, [(9, "w", 49.0), (0, "w", 1.0)])
        light = make_txn(2, [(0, "w", 1.0)])

        def driver():
            yield from h.scheduler.admit(heavy)
            yield from h.scheduler.admit(light)
            # heavy asks first but E(q_heavy) > E(p_light): delayed
            yield from h.scheduler.acquire(heavy, 0)
            h.trace.append((h.env.now, "locked", 1, 0))

        def light_driver():
            yield h.env.timeout(10)
            yield from h.scheduler.acquire(light, 0)
            h.trace.append((h.env.now, "locked", 2, 0))
            yield h.env.timeout(10)
            yield from h.scheduler.commit(light)

        h.env.process(driver())
        h.env.process(light_driver())
        h.run(until=2000)
        locked = [(e[2], e[0]) for e in h.events("locked")]
        assert locked[0][0] == 2  # light got the lock first

    def test_negative_k_rejected(self):
        env = Environment()
        config = MachineConfig()
        cn = ControlNode(env, config)
        with pytest.raises(ValueError):
            LOWScheduler(env, config, cn, k=-1)

    def test_deadlock_free_crossing_pattern(self):
        h = Harness(LOWScheduler, k=2)
        h.lifecycle(make_txn(1, [(0, "w", 1.0), (1, "w", 1.0)]), hold_ms=50)
        h.lifecycle(make_txn(2, [(1, "w", 1.0), (0, "w", 1.0)]), hold_ms=50)
        h.run()
        assert len(h.events("committed")) == 2


class TestGOW:
    def test_chain_breaking_start_rejected_until_commit(self):
        """A newcomer conflicting with the middle of a chain is aborted at
        Phase 0 and admitted only after the chain shrinks."""
        h = Harness(GOWScheduler)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]), hold_ms=100)
        h.lifecycle(make_txn(2, [(0, "w", 1.0), (1, "w", 1.0)]), hold_ms=100)
        h.lifecycle(make_txn(3, [(1, "w", 1.0), (2, "w", 1.0)]), hold_ms=100)
        # newcomer conflicts with T2 (file 0) and T3 (file 2): breaks chain
        h.lifecycle(make_txn(4, [(0, "w", 1.0), (2, "w", 1.0)]), hold_ms=10)
        h.run(until=90)
        admitted = {e[2] for e in h.events("admitted")}
        assert 4 not in admitted
        assert h.scheduler.stats.admission_rejections.total >= 1
        h.run()
        assert len(h.events("committed")) == 4

    def test_deadlock_free_crossing_pattern(self):
        h = Harness(GOWScheduler)
        h.lifecycle(make_txn(1, [(0, "w", 1.0), (1, "w", 1.0)]), hold_ms=50)
        h.lifecycle(make_txn(2, [(1, "w", 1.0), (0, "w", 1.0)]), hold_ms=50)
        h.run()
        assert len(h.events("committed")) == 2

    def test_grant_consistent_with_optimal_order(self):
        """The cheap transaction's conflicting request wins; the heavy
        one (conflicting at its last step, making the orientations
        asymmetric) is delayed until the cheap one commits."""
        h = Harness(GOWScheduler)
        heavy = make_txn(1, [(9, "w", 49.0), (0, "w", 1.0)])
        light = make_txn(2, [(0, "w", 1.0)])

        def heavy_driver():
            yield from h.scheduler.admit(heavy)
            yield h.env.timeout(5)  # let light be admitted first
            yield from h.scheduler.acquire(heavy, 0)
            h.trace.append((h.env.now, "locked", 1, 0))
            yield from h.scheduler.commit(heavy)

        def light_driver():
            yield from h.scheduler.admit(light)
            yield h.env.timeout(10)
            yield from h.scheduler.acquire(light, 0)
            h.trace.append((h.env.now, "locked", 2, 0))
            yield h.env.timeout(10)
            yield from h.scheduler.commit(light)

        h.env.process(heavy_driver())
        h.env.process(light_driver())
        h.run(until=2000)
        locked = [(e[2], e[0]) for e in h.events("locked")]
        assert locked and locked[0][0] == 2


class TestStatsAndCPU:
    def test_gow_charges_toptime_and_chaintime(self):
        h = Harness(GOWScheduler)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]))
        h.run()
        assert h.cn.cpu_ms_by_category.get("cc-gow", 0) >= (
            h.config.toptime_ms + h.config.chaintime_ms
        )

    def test_low_charges_kwtpgtime(self):
        h = Harness(LOWScheduler, k=2)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]))
        h.run()
        assert h.cn.cpu_ms_by_category.get("cc-low", 0) >= h.config.kwtpgtime_ms

    def test_c2pl_charges_ddtime(self):
        h = Harness(C2PLScheduler)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]))
        h.run()
        assert h.cn.cpu_ms_by_category.get("cc-c2pl", 0) >= h.config.ddtime_ms

    def test_commit_counters(self):
        h = Harness(C2PLScheduler)
        h.lifecycle(make_txn(1, [(0, "w", 1.0)]))
        h.run()
        assert h.scheduler.stats.commits.total == 1
        assert h.scheduler.active_count == 0
