"""Unit tests for data placement and declustering."""

import pytest
from hypothesis import given, strategies as st

from repro.machine import DataPlacement, MachineConfig


class TestHomeNodes:
    def test_home_node_is_file_mod_nodes(self):
        placement = DataPlacement(MachineConfig(num_files=16, num_nodes=8))
        for f in range(16):
            assert placement.home_node(f) == f % 8

    def test_out_of_range_file_rejected(self):
        placement = DataPlacement(MachineConfig(num_files=8))
        with pytest.raises(ValueError):
            placement.home_node(8)
        with pytest.raises(ValueError):
            placement.home_node(-1)


class TestDeclustering:
    def test_dd1_single_node(self):
        placement = DataPlacement(MachineConfig(dd=1))
        assert placement.nodes_for(3) == [3]

    def test_dd4_consecutive_nodes(self):
        placement = DataPlacement(MachineConfig(dd=4))
        assert placement.nodes_for(2) == [2, 3, 4, 5]

    def test_wraparound(self):
        placement = DataPlacement(MachineConfig(num_files=16, num_nodes=8, dd=4))
        assert placement.nodes_for(6) == [6, 7, 0, 1]

    def test_dd8_covers_all_nodes(self):
        placement = DataPlacement(MachineConfig(dd=8))
        assert sorted(placement.nodes_for(5)) == list(range(8))

    def test_per_file_override(self):
        placement = DataPlacement(MachineConfig(dd=1), dd_overrides={0: 4})
        assert len(placement.nodes_for(0)) == 4
        assert len(placement.nodes_for(1)) == 1
        assert placement.degree_of_declustering(0) == 4

    def test_bad_override_rejected(self):
        with pytest.raises(ValueError):
            DataPlacement(MachineConfig(), dd_overrides={0: 99})
        with pytest.raises(ValueError):
            DataPlacement(MachineConfig(num_files=4), dd_overrides={10: 2})

    @given(
        dd=st.integers(min_value=1, max_value=8),
        file_id=st.integers(min_value=0, max_value=15),
    )
    def test_nodes_are_distinct_and_start_at_home(self, dd, file_id):
        placement = DataPlacement(MachineConfig(dd=dd))
        nodes = placement.nodes_for(file_id)
        assert len(nodes) == dd
        assert len(set(nodes)) == dd
        assert nodes[0] == placement.home_node(file_id)


class TestStriding:
    def test_strided_placement_spreads_partitions(self):
        placement = DataPlacement(MachineConfig(dd=4), striping="strided")
        assert placement.nodes_for(0) == [0, 2, 4, 6]

    def test_unknown_striping_rejected(self):
        with pytest.raises(ValueError):
            DataPlacement(MachineConfig(), striping="random")


class TestCosts:
    def test_partition_cost_divides_by_dd(self):
        placement = DataPlacement(MachineConfig(dd=4))
        assert placement.partition_cost(0, 5.0) == pytest.approx(1.25)

    def test_partition_cost_at_dd1_is_full_cost(self):
        placement = DataPlacement(MachineConfig(dd=1))
        assert placement.partition_cost(0, 5.0) == 5.0


class TestFilesOnNode:
    def test_dd1_round_robin_assignment(self):
        placement = DataPlacement(MachineConfig(num_files=16, num_nodes=8, dd=1))
        assert placement.files_on_node(0) == [0, 8]
        assert placement.files_on_node(7) == [7, 15]

    def test_dd8_every_file_everywhere(self):
        placement = DataPlacement(MachineConfig(num_files=16, num_nodes=8, dd=8))
        for node in range(8):
            assert placement.files_on_node(node) == list(range(16))

    def test_bad_node_rejected(self):
        with pytest.raises(ValueError):
            DataPlacement(MachineConfig()).files_on_node(8)
