"""Round-robin service with mixed declustering degrees on one node.

Per-file DD overrides (partial declustering) put cohorts with different
quantum sizes in the same ring -- the realistic case the paper's
placement discussion motivates.  The node must honour each cohort's own
quantum and stay work-conserving.
"""

import pytest

from repro.des import Environment
from repro.machine import DataPlacement, MachineConfig, SharedNothingMachine
from repro.machine.data_node import Cohort, DataProcessingNode


class TestMixedQuanta:
    def test_different_quanta_share_one_node(self):
        """A DD=1 cohort (quantum 1 obj) and a DD=4 cohort (quantum
        0.25 obj) interleave per their own quanta."""
        env = Environment()
        node = DataProcessingNode(env, node_id=0, obj_time_ms=100.0)
        coarse = Cohort(env, txn_id=1, file_id=0, node_id=0,
                        objects=2.0, quantum_objects=1.0)
        fine = Cohort(env, txn_id=2, file_id=1, node_id=0,
                      objects=0.5, quantum_objects=0.25)
        done_c = node.submit(coarse)
        done_f = node.submit(fine)
        finish = {}
        done_c.callbacks.append(lambda e: finish.setdefault("coarse", env.now))
        done_f.callbacks.append(lambda e: finish.setdefault("fine", env.now))
        env.run()
        # service: coarse 100 (1 obj), fine 25, coarse 100, fine 25 -> fine
        # done at 250; coarse done at 250+... coarse has 2 obj: quanta at
        # t=100 (1st), then fine 25, then coarse 2nd quantum ends 225,
        # then fine's 2nd ends 250.  Coarse finished at 225.
        assert finish["coarse"] == pytest.approx(225.0)
        assert finish["fine"] == pytest.approx(250.0)
        # work conservation: total busy time equals total work
        assert env.now == pytest.approx(250.0)

    def test_per_file_override_through_machine(self):
        """A machine with one wide file and one narrow file produces
        cohorts whose quanta match their own file's DD."""
        env = Environment()
        config = MachineConfig(dd=1, num_files=16)
        placement = DataPlacement(config, dd_overrides={0: 4})
        machine = SharedNothingMachine(env, config, placement=placement)
        wide = machine.begin_step(txn_id=1, file_id=0, cost=4.0)
        narrow = machine.begin_step(txn_id=2, file_id=1, cost=4.0)
        assert len(wide.cohorts) == 4
        assert all(c.quantum_objects == 0.25 for c in wide.cohorts)
        assert len(narrow.cohorts) == 1
        assert narrow.cohorts[0].quantum_objects == 1.0

    def test_overridden_step_runs_end_to_end(self):
        env = Environment()
        config = MachineConfig(dd=1, num_files=16)
        placement = DataPlacement(config, dd_overrides={0: 8})
        machine = SharedNothingMachine(env, config, placement=placement)
        done_at = {}

        def driver(env, machine, txn_id, file_id):
            yield from machine.run_step(txn_id, file_id, cost=8.0)
            done_at[txn_id] = env.now

        def sequential(env, machine):
            # run the wide scan alone (a DD=8 file overlaps every node,
            # so concurrency would just measure sharing, not speedup)
            yield from machine.run_step(1, 0, cost=8.0)
            done_at[1] = env.now
            yield from machine.run_step(2, 1, cost=8.0)
            done_at[2] = env.now - done_at[1]

        env.process(sequential(env, machine))
        env.run()
        assert done_at[1] == pytest.approx(1000.0 + 4.0, rel=0.05)
        assert done_at[2] == pytest.approx(8000.0 + 4.0, rel=0.05)
