"""Integration tests for the SharedNothingMachine step executor."""

import pytest

from repro.des import Environment
from repro.machine import DataPlacement, MachineConfig, SharedNothingMachine


@pytest.fixture
def env():
    return Environment()


def run_step(env, machine, txn_id, file_id, cost):
    result = {}

    def driver(env, machine):
        execution = yield from machine.run_step(txn_id, file_id, cost)
        result["execution"] = execution
        result["finished_at"] = env.now

    env.process(driver(env, machine))
    env.run()
    return result


class TestStepExecution:
    def test_dd1_step_time(self, env):
        """5-object step at DD=1: 2 ms send + 5000 ms scan + 2 ms receive."""
        machine = SharedNothingMachine(env, MachineConfig(dd=1))
        result = run_step(env, machine, txn_id=1, file_id=0, cost=5.0)
        assert result["finished_at"] == pytest.approx(5004.0)

    def test_dd4_divides_scan_work(self, env):
        """5-object step at DD=4: each cohort scans 1.25 objects in parallel."""
        machine = SharedNothingMachine(env, MachineConfig(dd=4))
        result = run_step(env, machine, txn_id=1, file_id=0, cost=5.0)
        assert result["finished_at"] == pytest.approx(2 + 1250 + 2)

    def test_dd8_linear_scan_speedup_when_idle(self, env):
        machine = SharedNothingMachine(env, MachineConfig(dd=8))
        result = run_step(env, machine, txn_id=1, file_id=0, cost=8.0)
        assert result["finished_at"] == pytest.approx(2 + 1000 + 2)

    def test_cohorts_placed_on_declustered_nodes(self, env):
        machine = SharedNothingMachine(env, MachineConfig(dd=4))
        execution = machine.begin_step(txn_id=1, file_id=2, cost=4.0)
        assert [c.node_id for c in execution.cohorts] == [2, 3, 4, 5]
        assert all(c.objects == 1.0 for c in execution.cohorts)
        assert all(c.quantum_objects == 0.25 for c in execution.cohorts)

    def test_zero_cost_step_only_pays_messages(self, env):
        machine = SharedNothingMachine(env, MachineConfig(dd=1))
        result = run_step(env, machine, txn_id=1, file_id=0, cost=0.0)
        assert result["finished_at"] == pytest.approx(4.0)

    def test_step_execution_progress_tracking(self, env):
        machine = SharedNothingMachine(env, MachineConfig(dd=2))
        execution = machine.begin_step(txn_id=1, file_id=0, cost=4.0)
        assert execution.fraction_done() == 0.0
        for cohort in execution.cohorts:
            cohort.scanned = 1.0
        assert execution.fraction_done() == pytest.approx(0.5)
        assert execution.scanned_objects == pytest.approx(2.0)

    def test_zero_cost_execution_counts_as_done(self, env):
        machine = SharedNothingMachine(env, MachineConfig(dd=1))
        execution = machine.begin_step(txn_id=1, file_id=0, cost=0.0)
        assert execution.fraction_done() == 1.0


class TestContention:
    def test_two_steps_same_node_share_bandwidth(self, env):
        """Two concurrent 2-object scans of one node finish in ~4 s total."""
        machine = SharedNothingMachine(env, MachineConfig(dd=1))
        finish = {}

        def driver(env, machine, txn_id, file_id):
            yield from machine.run_step(txn_id, file_id, cost=2.0)
            finish[txn_id] = env.now

        # files 0 and 8 both live on node 0 at DD=1
        env.process(driver(env, machine, 1, 0))
        env.process(driver(env, machine, 2, 8))
        env.run()
        assert finish[1] == pytest.approx(3006.0, rel=0.01)
        assert finish[2] == pytest.approx(4008.0, rel=0.01)

    def test_steps_on_different_nodes_run_in_parallel(self, env):
        machine = SharedNothingMachine(env, MachineConfig(dd=1))
        finish = {}

        def driver(env, machine, txn_id, file_id):
            yield from machine.run_step(txn_id, file_id, cost=2.0)
            finish[txn_id] = env.now

        env.process(driver(env, machine, 1, 0))
        env.process(driver(env, machine, 2, 1))
        env.run()
        # only CN message serialisation separates them
        assert finish[1] == pytest.approx(2006.0, rel=0.01)
        assert finish[2] == pytest.approx(2008.0, rel=0.01)


class TestStatistics:
    def test_mean_dpn_utilisation(self, env):
        machine = SharedNothingMachine(env, MachineConfig(dd=1))

        def driver(env, machine):
            yield from machine.run_step(1, 0, cost=1.0)

        env.process(driver(env, machine))
        env.run(until=env.timeout(1004))
        # node 0 busy ~1000 of 1004 ms; other 7 idle
        assert machine.mean_dpn_utilisation() == pytest.approx(1.0 / 8, rel=0.05)

    def test_reset_statistics_cascades(self, env):
        machine = SharedNothingMachine(env, MachineConfig())

        def driver(env, machine):
            yield from machine.run_step(1, 0, cost=1.0)

        env.process(driver(env, machine))
        env.run()
        machine.reset_statistics()
        env.run(until=env.timeout(env.now + 100))
        assert machine.mean_dpn_utilisation() == pytest.approx(0.0)
        assert machine.control_node.cpu_ms_by_category == {}


class TestCustomPlacement:
    def test_explicit_placement_object(self, env):
        config = MachineConfig(dd=1)
        placement = DataPlacement(config, dd_overrides={0: 8})
        machine = SharedNothingMachine(env, config, placement=placement)
        execution = machine.begin_step(1, 0, cost=8.0)
        assert len(execution.cohorts) == 8
