"""Unit tests for the DPN round-robin cohort service."""

import pytest

from repro.des import Environment
from repro.machine.data_node import Cohort, DataProcessingNode


@pytest.fixture
def env():
    return Environment()


def make_cohort(env, node=0, objects=1.0, quantum=1.0, txn=0, file_id=0):
    return Cohort(
        env,
        txn_id=txn,
        file_id=file_id,
        node_id=node,
        objects=objects,
        quantum_objects=quantum,
    )


class TestCohort:
    def test_negative_objects_rejected(self, env):
        with pytest.raises(ValueError):
            make_cohort(env, objects=-1)

    def test_zero_quantum_rejected(self, env):
        with pytest.raises(ValueError):
            make_cohort(env, quantum=0)

    def test_remaining_tracks_scanned(self, env):
        cohort = make_cohort(env, objects=5.0)
        cohort.scanned = 2.0
        assert cohort.remaining == 3.0
        assert not cohort.finished

    def test_finished_at_full_scan(self, env):
        cohort = make_cohort(env, objects=5.0)
        cohort.scanned = 5.0
        assert cohort.finished


class TestSingleCohortService:
    def test_one_object_takes_obj_time(self, env):
        node = DataProcessingNode(env, node_id=0, obj_time_ms=1000.0)
        cohort = make_cohort(env, objects=1.0, quantum=1.0)
        env.run(until=node.submit(cohort))
        assert env.now == 1000.0
        assert cohort.finished

    def test_fractional_cost(self, env):
        node = DataProcessingNode(env, node_id=0, obj_time_ms=1000.0)
        cohort = make_cohort(env, objects=0.2, quantum=1.0)
        env.run(until=node.submit(cohort))
        assert env.now == pytest.approx(200.0)

    def test_zero_cost_completes_immediately(self, env):
        node = DataProcessingNode(env, node_id=0, obj_time_ms=1000.0)
        cohort = make_cohort(env, objects=0.0)
        done = node.submit(cohort)
        assert done.triggered
        assert node.active_cohorts == 0

    def test_wrong_node_rejected(self, env):
        node = DataProcessingNode(env, node_id=0, obj_time_ms=1000.0)
        with pytest.raises(ValueError):
            node.submit(make_cohort(env, node=3))

    def test_bad_obj_time_rejected(self, env):
        with pytest.raises(ValueError):
            DataProcessingNode(env, node_id=0, obj_time_ms=0)


class TestRoundRobin:
    def test_two_cohorts_share_the_node(self, env):
        """Two 2-object cohorts with quantum 1: service alternates a/b."""
        node = DataProcessingNode(env, node_id=0, obj_time_ms=100.0)
        a = make_cohort(env, objects=2.0, quantum=1.0, txn=1)
        b = make_cohort(env, objects=2.0, quantum=1.0, txn=2)
        done_a = node.submit(a)
        done_b = node.submit(b)
        finish = {}
        done_a.callbacks.append(lambda e: finish.setdefault("a", env.now))
        done_b.callbacks.append(lambda e: finish.setdefault("b", env.now))
        env.run()
        # a: quanta end at 100, 300; b: 200, 400
        assert finish["a"] == pytest.approx(300.0)
        assert finish["b"] == pytest.approx(400.0)

    def test_short_job_not_starved_behind_long_job(self, env):
        """Round-robin lets a 1-object scan finish inside a 10-object scan."""
        node = DataProcessingNode(env, node_id=0, obj_time_ms=100.0)
        long = make_cohort(env, objects=10.0, quantum=1.0, txn=1)
        short = make_cohort(env, objects=1.0, quantum=1.0, txn=2)
        node.submit(long)
        done_short = node.submit(short)
        env.run(until=done_short)
        # short runs its single quantum second: done at 200, not 1100
        assert env.now == pytest.approx(200.0)

    def test_late_arrival_joins_rotation(self, env):
        node = DataProcessingNode(env, node_id=0, obj_time_ms=100.0)
        first = make_cohort(env, objects=3.0, quantum=1.0, txn=1)
        node.submit(first)
        times = {}

        def submit_later(env, node):
            yield env.timeout(150)  # first is mid-second-quantum
            late = make_cohort(env, objects=1.0, quantum=1.0, txn=2)
            done = node.submit(late)
            yield done
            times["late"] = env.now

        env.process(submit_later(env, node))
        env.run()
        assert times["late"] == pytest.approx(300.0)

    def test_quantum_smaller_than_remaining_work(self, env):
        """A 1.5-object cohort with 0.5 quantum takes three quanta."""
        node = DataProcessingNode(env, node_id=0, obj_time_ms=1000.0)
        cohort = make_cohort(env, objects=1.5, quantum=0.5)
        env.run(until=node.submit(cohort))
        assert env.now == pytest.approx(1500.0)

    def test_last_partial_quantum_truncated(self, env):
        """A 1.2-object cohort with quantum 1 takes 1.2 * obj_time."""
        node = DataProcessingNode(env, node_id=0, obj_time_ms=1000.0)
        cohort = make_cohort(env, objects=1.2, quantum=1.0)
        env.run(until=node.submit(cohort))
        assert env.now == pytest.approx(1200.0)


class TestStatistics:
    def test_utilisation_full_while_busy(self, env):
        node = DataProcessingNode(env, node_id=0, obj_time_ms=100.0)
        node.submit(make_cohort(env, objects=5.0))
        env.run(until=env.timeout(500))
        assert node.utilisation() == pytest.approx(1.0)

    def test_utilisation_half_when_idle_half(self, env):
        node = DataProcessingNode(env, node_id=0, obj_time_ms=100.0)
        node.submit(make_cohort(env, objects=5.0))  # busy 500 of 1000
        env.run(until=env.timeout(1000))
        assert node.utilisation() == pytest.approx(0.5)

    def test_reset_statistics(self, env):
        node = DataProcessingNode(env, node_id=0, obj_time_ms=100.0)
        node.submit(make_cohort(env, objects=5.0))
        env.run(until=env.timeout(500))
        node.reset_statistics()
        env.run(until=env.timeout(1000))  # idle afterwards
        assert node.utilisation() == pytest.approx(0.0)
