"""Unit tests for MachineConfig (Table 1)."""

import pytest

from repro.machine import MachineConfig


class TestDefaults:
    def test_table1_defaults(self):
        cfg = MachineConfig()
        assert cfg.num_nodes == 8
        assert cfg.num_files == 16
        assert cfg.dd == 1
        assert cfg.mpl is None  # infinite
        assert cfg.cpu_speed_mips == 4.0
        assert cfg.netdelay_ms == 0.0
        assert cfg.msgtime_ms == 2.0
        assert cfg.sot_time_ms == 2.0
        assert cfg.cot_time_ms == 7.0
        assert cfg.ddtime_ms == 1.0
        assert cfg.kwtpgtime_ms == 10.0
        assert cfg.chaintime_ms == 30.0
        assert cfg.toptime_ms == 5.0
        assert cfg.obj_time_ms == 1000.0

    def test_frozen(self):
        with pytest.raises(Exception):
            MachineConfig().num_nodes = 4


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("num_nodes", 0),
        ("num_files", 0),
        ("dd", 0),
        ("mpl", 0),
        ("msgtime_ms", -1.0),
        ("sot_time_ms", -0.5),
        ("obj_time_ms", 0.0),
        ("cpu_speed_mips", 0.0),
        ("retry_delay_ms", -1.0),
    ])
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            MachineConfig(**{field: value})

    def test_dd_bounded_by_num_nodes(self):
        with pytest.raises(ValueError):
            MachineConfig(num_nodes=8, dd=9)
        MachineConfig(num_nodes=8, dd=8)  # boundary ok

    def test_mpl_one_is_valid(self):
        assert MachineConfig(mpl=1).mpl == 1


class TestScaling:
    def test_default_scale_is_one(self):
        assert MachineConfig().cpu_scale == 1.0
        assert MachineConfig().scaled(10.0) == 10.0

    def test_slower_cpu_inflates_costs(self):
        cfg = MachineConfig(cpu_speed_mips=2.0)
        assert cfg.scaled(10.0) == 20.0

    def test_faster_cpu_deflates_costs(self):
        cfg = MachineConfig(cpu_speed_mips=8.0)
        assert cfg.scaled(10.0) == 5.0


class TestReplace:
    def test_replace_returns_new_config(self):
        base = MachineConfig()
        changed = base.replace(dd=4, num_files=64)
        assert changed.dd == 4
        assert changed.num_files == 64
        assert base.dd == 1  # original untouched

    def test_replace_validates(self):
        with pytest.raises(ValueError):
            MachineConfig().replace(dd=100)
