"""Unit tests for the control node CPU."""

import pytest

from repro.des import Environment
from repro.machine import ControlNode, MachineConfig


@pytest.fixture
def env():
    return Environment()


def run_consumers(env, cn, costs, category="x"):
    finish_times = []

    def job(env, cn, cost):
        yield from cn.consume(cost, category)
        finish_times.append(env.now)

    for cost in costs:
        env.process(job(env, cn, cost))
    env.run()
    return finish_times


class TestConsume:
    def test_single_job_takes_its_cost(self, env):
        cn = ControlNode(env, MachineConfig())
        assert run_consumers(env, cn, [7.0]) == [7.0]

    def test_jobs_serialise_fifo(self, env):
        cn = ControlNode(env, MachineConfig())
        assert run_consumers(env, cn, [2.0, 3.0, 5.0]) == [2.0, 5.0, 10.0]

    def test_zero_cost_is_free(self, env):
        cn = ControlNode(env, MachineConfig())
        assert run_consumers(env, cn, [0.0]) == [0.0]

    def test_negative_cost_rejected(self, env):
        cn = ControlNode(env, MachineConfig())

        def job(env, cn):
            yield from cn.consume(-1.0)

        env.process(job(env, cn))
        with pytest.raises(ValueError):
            env.run()

    def test_cpu_speed_scales_costs(self, env):
        cn = ControlNode(env, MachineConfig(cpu_speed_mips=2.0))  # half speed
        assert run_consumers(env, cn, [10.0]) == [20.0]

    def test_cost_accounting_by_category(self, env):
        cn = ControlNode(env, MachineConfig())
        run_consumers(env, cn, [2.0, 3.0], category="startup")
        assert cn.cpu_ms_by_category["startup"] == pytest.approx(5.0)


class TestMessages:
    def test_send_costs_msgtime(self, env):
        cn = ControlNode(env, MachineConfig())

        def job(env, cn):
            yield from cn.send_message()

        env.process(job(env, cn))
        env.run()
        assert env.now == pytest.approx(2.0)
        assert cn.messages.total == 1

    def test_netdelay_added_to_send(self, env):
        cn = ControlNode(env, MachineConfig(netdelay_ms=50.0))

        def job(env, cn):
            yield from cn.send_message()

        env.process(job(env, cn))
        env.run()
        assert env.now == pytest.approx(52.0)

    def test_receive_costs_msgtime_without_delay(self, env):
        cn = ControlNode(env, MachineConfig(netdelay_ms=50.0))

        def job(env, cn):
            yield from cn.receive_message()

        env.process(job(env, cn))
        env.run()
        assert env.now == pytest.approx(2.0)


class TestUtilisation:
    def test_fully_busy(self, env):
        cn = ControlNode(env, MachineConfig())

        def job(env, cn):
            yield from cn.consume(100.0)

        env.process(job(env, cn))
        env.run(until=env.timeout(100))
        assert cn.utilisation() == pytest.approx(1.0)

    def test_half_busy(self, env):
        cn = ControlNode(env, MachineConfig())

        def job(env, cn):
            yield from cn.consume(50.0)

        env.process(job(env, cn))
        env.run(until=env.timeout(100))
        assert cn.utilisation() == pytest.approx(0.5)

    def test_reset_statistics(self, env):
        cn = ControlNode(env, MachineConfig())

        def job(env, cn):
            yield from cn.consume(50.0)

        env.process(job(env, cn))
        env.run(until=env.timeout(50))
        cn.reset_statistics()
        assert cn.cpu_ms_by_category == {}
        env.run(until=env.timeout(150))
        assert cn.utilisation() == pytest.approx(0.0)
