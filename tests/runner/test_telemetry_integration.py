"""Integration tests: live telemetry, stall detection, broken pools.

The deliberately-misbehaving workers come from the worker module's env
test hooks (:data:`STALL_TEST_ENV` sleeps heartbeat-free after
``run.start``; :data:`EXIT_TEST_ENV` kills the worker process), which
child processes inherit through the environment.
"""

import json

import pytest

from repro.machine import MachineConfig
from repro.obs import (
    read_status,
    read_telemetry_records,
    validate_telemetry_jsonl,
)
from repro.runner import (
    ParallelRunner,
    ResultCache,
    RunRegistry,
    RunSpec,
    WorkloadSpec,
)
from repro.runner.worker import EXIT_TEST_ENV, STALL_TEST_ENV


def make_specs(count, duration_ms=15_000.0):
    return [
        RunSpec(
            scheduler="NODC",
            workload=WorkloadSpec.make("exp1", 0.4, num_files=16),
            config=MachineConfig(),
            seed=seed,
            duration_ms=duration_ms,
            warmup_ms=0.0,
        )
        for seed in range(count)
    ]


def make_runner(tmp_path, **overrides):
    options = dict(
        pool_size=2,
        cache=None,
        runs_dir=tmp_path / "runs",
        progress=None,
        telemetry=True,
        heartbeat_s=0.0,
        progress_every=16,
    )
    options.update(overrides)
    return ParallelRunner(**options)


def batch_artifacts(runner):
    base = runner.runs_dir / runner.last_batch_id
    return base / "telemetry.jsonl", base / "status.json"


def stream_kinds(path):
    return [r["kind"] for r in read_telemetry_records(path, 0)[0]]


class TestHappyPath:
    def test_pool_batch_emits_valid_stream_and_full_status(self, tmp_path):
        runner = make_runner(tmp_path)
        results = runner.run_batch(make_specs(3), label="happy")
        assert all(r is not None for r in results)
        assert runner.last_failures == {}
        telemetry_path, status_path = batch_artifacts(runner)
        assert validate_telemetry_jsonl(telemetry_path) > 0
        kinds = stream_kinds(telemetry_path)
        assert kinds[0] == "batch.meta"
        assert kinds[-1] == "batch.done"
        assert kinds.count("run.start") == 3
        assert kinds.count("run.done") == 3
        status = read_status(status_path)
        assert status["status"] == "complete"
        assert status["progress"] == 1.0
        assert all(c["progress"] == 1.0 for c in status["cells"])
        assert status["counts"]["done"] == 3

    def test_heartbeats_flow_through_engine_hook(self, tmp_path):
        runner = make_runner(tmp_path, pool_size=1)
        runner.run_batch(make_specs(1, duration_ms=40_000.0), label="hb")
        telemetry_path, _ = batch_artifacts(runner)
        records = read_telemetry_records(telemetry_path, 0)[0]
        beats = [r for r in records if r["kind"] == "run.heartbeat"]
        assert beats, "expected at least one heartbeat"
        assert beats[-1]["sim_ms"] <= 40_000.0
        assert 0.0 < beats[-1]["progress"] <= 1.0

    def test_results_identical_with_telemetry_off(self, tmp_path):
        specs = make_specs(2)
        with_telemetry = make_runner(tmp_path).run_batch(specs, label="on")
        without = ParallelRunner(
            pool_size=2, cache=None, runs_dir=None, progress=None,
        ).run_batch(specs, label="off")
        assert (
            [r.to_dict() for r in with_telemetry]
            == [r.to_dict() for r in without]
        )

    def test_cached_and_coalesced_cells_reach_terminal_state(
        self, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        specs = make_specs(2)
        make_runner(tmp_path, cache=cache).run_batch(specs, label="warm")
        # second batch: cell 0 cache-hits, cells 1+2 coalesce
        runner = make_runner(tmp_path, cache=cache)
        duplicated = [specs[0], make_specs(3)[2], make_specs(3)[2]]
        results = runner.run_batch(duplicated, label="dup")
        assert results[1].to_dict() == results[2].to_dict()
        _, status_path = batch_artifacts(runner)
        status = read_status(status_path)
        assert status["counts"]["cached"] == 1
        assert status["counts"]["done"] == 2
        assert status["progress"] == 1.0
        manifest = json.loads(runner.last_manifest_path.read_text())
        assert [r["status"] for r in manifest["runs"]] == [
            "cached", "done", "done",
        ]

    def test_telemetry_requires_runs_dir(self):
        with pytest.raises(ValueError, match="runs_dir"):
            ParallelRunner(telemetry=True, runs_dir=None)

    def test_registry_records_running_then_terminal(self, tmp_path):
        runner = make_runner(tmp_path)
        runner.run_batch(make_specs(2), label="reg")
        registry = RunRegistry(tmp_path / "runs")
        entry = registry.find("latest")
        assert entry["batch"] == runner.last_batch_id
        assert entry["status"] == "complete"
        assert entry["kind"] == "sweep"
        assert entry["total"] == 2
        # both the running and the terminal record were appended
        raw = registry.path.read_text().strip().splitlines()
        assert len(raw) == 2


class TestStallDetection:
    def test_stalled_worker_is_killed_and_reported(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(STALL_TEST_ENV, "1:60")
        runner = make_runner(
            tmp_path, stall_timeout_s=0.75, stall_retry=False,
        )
        results = runner.run_batch(make_specs(3), label="stall")
        assert results[0] is not None and results[2] is not None
        assert results[1] is None
        assert "stalled" in runner.last_failures[1]
        telemetry_path, status_path = batch_artifacts(runner)
        kinds = stream_kinds(telemetry_path)
        assert "run.stalled" in kinds
        assert "run.retry" not in kinds
        status = read_status(status_path)
        assert status["status"] == "partial"
        assert status["cells"][1]["state"] == "failed"
        manifest = json.loads(runner.last_manifest_path.read_text())
        assert manifest["status"] == "partial"
        assert manifest["runs"][1]["status"] == "failed"
        assert "stalled" in manifest["runs"][1]["error"]

    def test_stalled_cell_is_retried_once(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STALL_TEST_ENV, "1:60")
        runner = make_runner(
            tmp_path, stall_timeout_s=0.75, stall_retry=True,
        )
        results = runner.run_batch(make_specs(3), label="stall-retry")
        # the hook stalls attempt 2 as well, so the cell ends up failed
        # -- but only after a recorded retry
        assert results[1] is None
        kinds = stream_kinds(stream := batch_artifacts(runner)[0])
        assert "run.retry" in kinds
        records = read_telemetry_records(stream, 0)[0]
        starts = [r for r in records if r["kind"] == "run.start"
                  and r["cell"] == 1]
        assert len(starts) == 2
        status = read_status(batch_artifacts(runner)[1])
        assert status["cells"][1]["attempt"] == 2


class TestBrokenPool:
    def test_dead_worker_fails_only_its_cell(self, tmp_path, monkeypatch):
        monkeypatch.setenv(EXIT_TEST_ENV, "1")
        runner = make_runner(tmp_path)
        results = runner.run_batch(make_specs(3), label="death")
        assert results[0] is not None and results[2] is not None
        assert results[1] is None
        assert "died" in runner.last_failures[1]
        manifest = json.loads(runner.last_manifest_path.read_text())
        assert manifest["status"] == "partial"
        assert [r["status"] for r in manifest["runs"]] == [
            "done", "failed", "done",
        ]
        assert manifest["counts"]["failed"] == 1

    def test_batch_without_telemetry_survives_death_too(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(EXIT_TEST_ENV, "0")
        runner = make_runner(tmp_path, telemetry=False)
        # the hook only fires for telemetry-context runs, so this batch
        # cannot observe it: it must simply complete
        results = runner.run_batch(make_specs(2), label="plain")
        assert all(r is not None for r in results)


class TestInterrupt:
    def test_sigint_writes_interrupted_manifest(self, tmp_path):
        seen = []

        def listener(event):
            seen.append(event.kind)
            if event.kind == "run-done":
                raise KeyboardInterrupt

        runner = make_runner(tmp_path, pool_size=1, progress=listener)
        with pytest.raises(KeyboardInterrupt):
            runner.run_batch(make_specs(3), label="interrupt")
        manifest = json.loads(runner.last_manifest_path.read_text())
        assert manifest["status"] == "interrupted"
        statuses = [r["status"] for r in manifest["runs"]]
        assert statuses[0] == "done"
        assert "pending" in statuses
        status = read_status(batch_artifacts(runner)[1])
        assert status["status"] == "interrupted"
        entry = RunRegistry(tmp_path / "runs").find("latest")
        assert entry["status"] == "interrupted"
        assert seen[-1] == "batch-done"


class TestBenchTelemetry:
    def test_bench_batch_emits_valid_stream(self, tmp_path):
        runner = make_runner(tmp_path, pool_size=1)
        rows = runner.run_bench(make_specs(2), label="bench", repeats=1)
        assert all(row is not None for row in rows)
        telemetry_path, status_path = batch_artifacts(runner)
        assert validate_telemetry_jsonl(telemetry_path) > 0
        status = read_status(status_path)
        assert status["kind"] == "bench"
        assert status["status"] == "complete"
        entry = RunRegistry(tmp_path / "runs").find("latest")
        assert entry["kind"] == "bench"
