"""Unit tests for the on-disk result cache."""

import json

from repro.machine import MachineConfig
from repro.runner import ResultCache, RunSpec, WorkloadSpec
from repro.sim.metrics import SimulationResult


def make_spec(seed=0):
    return RunSpec(
        scheduler="NODC",
        workload=WorkloadSpec.make("exp1", 0.5, num_files=16),
        config=MachineConfig(),
        seed=seed,
        duration_ms=50_000.0,
        warmup_ms=0.0,
    )


def make_result(**overrides):
    base = dict(
        scheduler="NODC",
        arrival_rate_tps=0.5,
        duration_ms=50_000.0,
        warmup_ms=0.0,
        completed=12,
        mean_response_ms=9_000.0,
        p95_response_ms=20_000.0,
        max_response_ms=25_000.0,
        throughput_tps=0.24,
        cn_utilisation=0.1,
        dpn_utilisation=0.4,
        restarts=1,
        admission_rejections=0,
        blocks=2,
        delays=3,
        in_flight_at_end=1,
        seed=0,
        label_metrics={"txn": (12, 9_000.0)},
    )
    base.update(overrides)
    return SimulationResult(**base)


class TestResultCache:
    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get(make_spec()) is None

    def test_roundtrip_preserves_result_exactly(self, tmp_path):
        cache = ResultCache(tmp_path)
        stored = make_result()
        cache.put(make_spec(), stored)
        loaded = cache.get(make_spec())
        assert loaded == stored
        assert loaded.label_metrics["txn"] == (12, 9_000.0)

    def test_nan_metrics_survive_roundtrip(self, tmp_path):
        import math

        cache = ResultCache(tmp_path)
        cache.put(
            make_spec(), make_result(mean_response_ms=float("nan"), completed=0)
        )
        loaded = cache.get(make_spec())
        assert math.isnan(loaded.mean_response_ms)

    def test_distinct_specs_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(make_spec(seed=0), make_result(seed=0))
        cache.put(make_spec(seed=1), make_result(seed=1, completed=99))
        assert cache.get(make_spec(seed=0)).completed == 12
        assert cache.get(make_spec(seed=1)).completed == 99
        assert len(cache) == 2

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(make_spec(), make_result())
        path.write_text("{ truncated")
        assert cache.get(make_spec()) is None

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(make_spec(), make_result())
        payload = json.loads(path.read_text())
        payload["version"] = -1
        path.write_text(json.dumps(payload))
        assert cache.get(make_spec()) is None

    def test_entries_fan_out_by_key_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(make_spec(), make_result())
        key = make_spec().cache_key()
        assert path.parent.name == key[:2]
        assert path.name == f"{key}.json"


class TestConcurrentWriters:
    def test_racing_threads_never_produce_torn_reads(self, tmp_path):
        """Many writers, one key: every read sees a complete entry."""
        import threading

        cache = ResultCache(tmp_path)
        spec = make_spec()
        errors = []

        def writer(completed):
            try:
                for _ in range(20):
                    cache.put(spec, make_result(completed=completed))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader():
            try:
                for _ in range(100):
                    result = cache.get(spec)
                    # a miss before the first write is fine; a torn
                    # entry would raise inside get() -> None here means
                    # either absent or complete, never partial JSON
                    if result is not None:
                        assert result.completed in (5, 6, 7)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(c,)) for c in (5, 6, 7)
        ] + [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert cache.get(spec).completed in (5, 6, 7)

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(make_spec(), make_result())
        leftovers = [
            p for p in path.parent.iterdir() if p.suffix == ".tmp"
        ]
        assert leftovers == []


class TestMaintenance:
    def fill(self, tmp_path, count, age_step_s=100.0):
        """A cache of ``count`` entries with mtimes ``age_step_s`` apart."""
        import os
        import time

        cache = ResultCache(tmp_path / "cache")
        now = time.time()
        for seed in range(count):
            path = cache.put(make_spec(seed=seed), make_result(seed=seed))
            aged = now - (count - seed) * age_step_s  # seed 0 is oldest
            os.utime(path, (aged, aged))
        return cache

    def test_stats_counts_sizes_and_ages(self, tmp_path):
        cache = self.fill(tmp_path, 3)
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["total_bytes"] > 0
        assert stats["oldest_age_s"] > stats["newest_age_s"] > 0

    def test_stats_on_empty_or_missing_root(self, tmp_path):
        stats = ResultCache(tmp_path / "nowhere").stats()
        assert stats["entries"] == 0
        assert stats["oldest_age_s"] is None

    def test_gc_by_age_prunes_only_old_entries(self, tmp_path):
        cache = self.fill(tmp_path, 4)
        report = cache.gc(max_age_s=250.0)  # entries are 100s apart
        assert report == {
            "examined": 4, "pruned": 2, "kept": 2, "dry_run": 0,
        }
        assert cache.get(make_spec(seed=0)) is None  # oldest: gone
        assert cache.get(make_spec(seed=3)) is not None  # newest: kept

    def test_gc_by_count_keeps_newest(self, tmp_path):
        cache = self.fill(tmp_path, 5)
        report = cache.gc(max_entries=2)
        assert report["pruned"] == 3 and report["kept"] == 2
        assert len(cache) == 2
        assert cache.get(make_spec(seed=4)) is not None

    def test_gc_dry_run_deletes_nothing(self, tmp_path):
        cache = self.fill(tmp_path, 3)
        report = cache.gc(max_entries=1, dry_run=True)
        assert report["pruned"] == 2 and report["dry_run"] == 1
        assert len(cache) == 3

    def test_gc_drops_empty_fanout_dirs(self, tmp_path):
        cache = self.fill(tmp_path, 2)
        cache.gc(max_entries=0)
        assert len(cache) == 0
        assert not any(
            p.is_dir() for p in cache.root.iterdir()
        ), "empty fan-out dirs survived gc"
