"""Per-run time-series artifacts through the parallel runner."""

import json

from repro.machine import MachineConfig
from repro.obs.timeseries import load_series_json
from repro.runner import ParallelRunner, ResultCache, RunSpec, WorkloadSpec
from repro.runner.worker import execute_spec, series_artifact_path

QUICK = dict(duration_ms=20_000.0, warmup_ms=0.0)


def spec(timeseries=True, scheduler="C2PL", rate=0.6, **overrides):
    settings = dict(QUICK)
    settings.update(overrides)
    return RunSpec(
        scheduler=scheduler,
        workload=WorkloadSpec.make("exp1", rate, num_files=16),
        config=MachineConfig(),
        seed=1,
        timeseries=timeseries,
        **settings,
    )


class TestSpecFlag:
    def test_timeseries_flag_changes_cache_key(self):
        assert (
            spec(timeseries=True).cache_key()
            != spec(timeseries=False).cache_key()
        )

    def test_timeseries_flag_round_trips(self):
        restored = RunSpec.from_dict(spec(timeseries=True).to_dict())
        assert restored == spec(timeseries=True)
        # legacy payloads without the field default to unsampled
        payload = spec(timeseries=False).to_dict()
        del payload["timeseries"]
        assert RunSpec.from_dict(payload).timeseries is False

    def test_describe_mentions_sampling(self):
        assert "ts" in spec(timeseries=True).describe().split()[-1]
        assert "[" not in spec(timeseries=False).describe()


class TestExecuteSpec:
    def test_writes_validating_artifact(self, tmp_path):
        s = spec()
        result = execute_spec(s, series_dir=tmp_path)
        path = series_artifact_path(tmp_path, s)
        assert path.exists()
        payload = load_series_json(path)
        assert payload["samples"] == 20  # 20s at the pinned 1s interval
        assert payload["meta"]["scheduler"] == "C2PL"
        assert "cn.util" in payload["series"]
        assert result.completed > 0

    def test_unsampled_spec_writes_nothing(self, tmp_path):
        execute_spec(spec(timeseries=False), series_dir=tmp_path)
        assert list(tmp_path.iterdir()) == []

    def test_sampling_does_not_change_the_result(self, tmp_path):
        sampled = execute_spec(spec(timeseries=True), series_dir=tmp_path)
        bare = execute_spec(spec(timeseries=False))
        assert sampled.completed == bare.completed
        assert sampled.mean_response_ms == bare.mean_response_ms
        assert sampled.blocks == bare.blocks

    def test_trace_and_series_can_combine(self, tmp_path):
        s = spec(timeseries=True, trace=True)
        execute_spec(
            s, traces_dir=tmp_path / "t", series_dir=tmp_path / "s"
        )
        assert series_artifact_path(tmp_path / "s", s).exists()
        assert (tmp_path / "t" / f"{s.cache_key()}.trace.jsonl").exists()


class TestRunnerIntegration:
    def test_batch_writes_artifacts_and_manifest_paths(self, tmp_path):
        runner = ParallelRunner(
            pool_size=1,
            runs_dir=tmp_path / "runs",
            series_dir=tmp_path / "series",
            progress=None,
        )
        specs = [spec(scheduler="C2PL"), spec(scheduler="NODC")]
        runner.run_batch(specs, label="sampled")
        for s in specs:
            assert series_artifact_path(tmp_path / "series", s).exists()
        entries = runner.last_batch["runs"]
        assert [e["series_artifact"] for e in entries] == [
            str(series_artifact_path(tmp_path / "series", s)) for s in specs
        ]
        on_disk = json.loads(runner.last_manifest_path.read_text())
        assert on_disk["runs"] == entries

    def test_unsampled_batch_has_null_artifacts(self, tmp_path):
        runner = ParallelRunner(
            pool_size=1, series_dir=tmp_path / "series", progress=None
        )
        runner.run_batch([spec(timeseries=False)], label="plain")
        assert runner.last_batch["runs"][0]["series_artifact"] is None
        assert not (tmp_path / "series").exists()

    def test_pool_execution_writes_artifacts(self, tmp_path):
        runner = ParallelRunner(
            pool_size=2, series_dir=tmp_path / "series", progress=None
        )
        specs = [spec(rate=0.4), spec(rate=0.8)]
        runner.run_batch(specs, label="pooled")
        for s in specs:
            payload = load_series_json(
                series_artifact_path(tmp_path / "series", s)
            )
            assert payload["samples"] == 20

    def test_cached_rerun_keeps_artifact_reference(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        kwargs = dict(
            pool_size=1, cache=cache, series_dir=tmp_path / "series",
            progress=None,
        )
        ParallelRunner(**kwargs).run_batch([spec()], label="one")
        second = ParallelRunner(**kwargs)
        second.run_batch([spec()], label="two")
        assert second.cache_hits == 1
        entry = second.last_batch["runs"][0]
        assert entry["cached"] is True
        assert entry["series_artifact"] == str(
            series_artifact_path(tmp_path / "series", spec())
        )
