"""Equivalence of the runner-backed search/experiment paths.

Every rewired entry point must produce the same numbers whether the
specs run inline, through a cached single-process runner, or across a
worker pool.
"""

import math

from repro.experiments import SMOKE, exp1, exp2
from repro.machine import MachineConfig
from repro.runner import ParallelRunner, ResultCache, RunSpec, WorkloadSpec
from repro.sim import (
    ThroughputRequest,
    best_mpl_result,
    find_throughput_at_response_time,
    find_throughput_batch,
    sweep,
)
from repro.txn import experiment1_workload

QUICK = dict(duration_ms=60_000.0, warmup_ms=10_000.0)


def quiet_runner(tmp_path, pool_size=1):
    return ParallelRunner(
        pool_size=pool_size,
        cache=ResultCache(tmp_path / "cache"),
        progress=None,
    )


class TestFindThroughput:
    def test_spec_path_matches_factory_path(self, tmp_path):
        common = dict(target_rt_ms=40_000.0, iterations=4, seed=1, **QUICK)
        legacy = find_throughput_at_response_time(
            "NODC",
            lambda rate: experiment1_workload(rate, num_files=16),
            **common,
        )
        via_runner = find_throughput_at_response_time(
            "NODC",
            workload_spec=WorkloadSpec.make("exp1", 1.0, num_files=16),
            runner=quiet_runner(tmp_path),
            **common,
        )
        assert via_runner.to_dict() == legacy.to_dict()

    def test_lockstep_batch_matches_individual_searches(self, tmp_path):
        requests = [
            ThroughputRequest(
                scheduler=scheduler,
                workload=WorkloadSpec.make("exp1", 1.0, num_files=16),
                target_rt_ms=40_000.0,
                iterations=3,
                seed=1,
                **QUICK,
            )
            for scheduler in ("NODC", "ASL")
        ]
        batched = find_throughput_batch(requests, quiet_runner(tmp_path))
        individual = [find_throughput_batch([request]) for request in requests]
        assert [r.to_dict() for r in batched] == [
            r[0].to_dict() for r in individual
        ]


class TestBestMpl:
    def test_runner_path_matches_legacy(self, tmp_path):
        common = dict(
            rate_tps=0.6, mpl_candidates=(2, 8), seed=1, **QUICK
        )
        legacy = best_mpl_result(
            lambda rate: experiment1_workload(rate, num_files=16),
            MachineConfig(dd=1),
            **common,
        )
        via_runner = best_mpl_result(
            base_config=MachineConfig(dd=1),
            workload_spec=WorkloadSpec.make("exp1", 1.0, num_files=16),
            runner=quiet_runner(tmp_path),
            **common,
        )
        assert via_runner.to_dict() == legacy.to_dict()
        assert via_runner.scheduler == "C2PL+M"
        assert not via_runner.fallback


class TestSweep:
    def test_spec_form_matches_callable_form(self, tmp_path):
        def spec_for(name):
            return RunSpec(
                scheduler=name,
                workload=WorkloadSpec.make("exp1", 0.5, num_files=16),
                seed=1,
                **QUICK,
            )

        from repro.sim import run_at_rate

        by_callable = sweep(
            ["NODC", "C2PL"],
            lambda name: run_at_rate(
                name,
                lambda rate: experiment1_workload(rate, num_files=16),
                0.5,
                seed=1,
                **QUICK,
            ),
        )
        by_spec = sweep(
            ["NODC", "C2PL"],
            spec_for=spec_for,
            parallel=quiet_runner(tmp_path),
        )
        assert {k: v.to_dict() for k, v in by_spec.items()} == {
            k: v.to_dict() for k, v in by_callable.items()
        }


class TestExperimentsThroughRunner:
    def test_figure12_identical_with_and_without_runner(self, tmp_path):
        plain = exp2.figure12(SMOKE, schedulers=("NODC", "C2PL"), dds=(1, 2))
        runner = quiet_runner(tmp_path, pool_size=2)
        pooled = exp2.figure12(
            SMOKE, schedulers=("NODC", "C2PL"), dds=(1, 2), runner=runner
        )
        assert pooled.rows == plain.rows

        # the same figure again is served entirely from the cache
        rerun_runner = quiet_runner(tmp_path)
        rerun = exp2.figure12(
            SMOKE, schedulers=("NODC", "C2PL"), dds=(1, 2), runner=rerun_runner
        )
        assert rerun.rows == plain.rows
        assert rerun_runner.cache_hits == rerun_runner.runs_completed
        assert rerun_runner.cache_misses == 0

    def test_table2_identical_with_and_without_runner(self, tmp_path):
        plain = exp1.table2(SMOKE, schedulers=("ASL",), file_counts=(8, 16))
        pooled = exp1.table2(
            SMOKE,
            schedulers=("ASL",),
            file_counts=(8, 16),
            runner=quiet_runner(tmp_path, pool_size=2),
        )
        assert pooled.rows == plain.rows
        for row in pooled.rows:
            assert not math.isnan(row[1])
