"""The shared-dir spool janitor: abandoned litter goes, live state stays."""

import os

from repro.runner import janitor_sweep
from repro.runner.backends.shared_dir import (
    DEFAULT_DONE_MAX_AGE_S,
    spool_dirs,
)


def backdate(path, seconds):
    stamp = path.stat().st_mtime - seconds
    os.utime(path, (stamp, stamp))


def populate(spool):
    """A spool mixing every litter class with live state."""
    pending, claimed, done = spool_dirs(spool)

    (pending / "fresh.task.json").write_text("{}")

    live_ticket = claimed / "live.task.json"
    live_ticket.write_text("{}")
    (claimed / "live.task.json.owner.json").write_text("{}")

    stale_ticket = claimed / "stale.task.json"
    stale_ticket.write_text("{}")
    stale_owner = claimed / "stale.task.json.owner.json"
    stale_owner.write_text("{}")
    backdate(stale_ticket, 120.0)
    backdate(stale_owner, 120.0)

    orphan = claimed / "gone.task.json.owner.json"
    orphan.write_text("{}")

    old_result = done / "old.result.json"
    old_result.write_text("{}")
    backdate(old_result, DEFAULT_DONE_MAX_AGE_S + 60.0)
    (done / "fresh.result.json").write_text("{}")

    torn = pending / ".spool.abc123"
    torn.write_text("")
    backdate(torn, DEFAULT_DONE_MAX_AGE_S + 60.0)
    return pending, claimed, done


class TestJanitorSweep:
    def test_removes_exactly_the_abandoned_litter(self, tmp_path):
        pending, claimed, done = populate(tmp_path)
        counts = janitor_sweep(tmp_path, lease_s=15.0)
        assert counts == {
            "done_removed": 1,
            "claims_removed": 1,
            "owners_removed": 2,  # expired claim's sidecar + the orphan
            "temps_removed": 1,
        }
        # live state is untouched
        assert (pending / "fresh.task.json").exists()
        assert (claimed / "live.task.json").exists()
        assert (claimed / "live.task.json.owner.json").exists()
        assert (done / "fresh.result.json").exists()
        # litter is gone
        assert not (claimed / "stale.task.json").exists()
        assert not (claimed / "stale.task.json.owner.json").exists()
        assert not (claimed / "gone.task.json.owner.json").exists()
        assert not (done / "old.result.json").exists()
        assert not (pending / ".spool.abc123").exists()

    def test_clean_spool_sweeps_to_zero(self, tmp_path):
        spool_dirs(tmp_path)
        counts = janitor_sweep(tmp_path)
        assert counts == {
            "done_removed": 0,
            "claims_removed": 0,
            "owners_removed": 0,
            "temps_removed": 0,
        }

    def test_longer_lease_preserves_middle_aged_claims(self, tmp_path):
        _pending, claimed, _done = spool_dirs(tmp_path)
        ticket = claimed / "mid.task.json"
        ticket.write_text("{}")
        backdate(ticket, 120.0)
        assert janitor_sweep(tmp_path, lease_s=600.0)["claims_removed"] == 0
        assert ticket.exists()
        assert janitor_sweep(tmp_path, lease_s=15.0)["claims_removed"] == 1
        assert not ticket.exists()

    def test_sweep_is_idempotent(self, tmp_path):
        populate(tmp_path)
        janitor_sweep(tmp_path, lease_s=15.0)
        second = janitor_sweep(tmp_path, lease_s=15.0)
        assert sum(second.values()) == 0
