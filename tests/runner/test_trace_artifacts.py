"""Per-run trace artifacts through the parallel runner."""

import json

from repro.machine import MachineConfig
from repro.obs import validate_jsonl
from repro.runner import ParallelRunner, ResultCache, RunSpec, WorkloadSpec
from repro.runner.worker import execute_spec, trace_artifact_path

QUICK = dict(duration_ms=20_000.0, warmup_ms=0.0)


def spec(trace=True, scheduler="C2PL", rate=0.6, **overrides):
    settings = dict(QUICK)
    settings.update(overrides)
    return RunSpec(
        scheduler=scheduler,
        workload=WorkloadSpec.make("exp1", rate, num_files=16),
        config=MachineConfig(),
        seed=1,
        trace=trace,
        **settings,
    )


class TestSpecFlag:
    def test_trace_flag_changes_cache_key(self):
        assert spec(trace=True).cache_key() != spec(trace=False).cache_key()

    def test_trace_flag_round_trips(self):
        restored = RunSpec.from_dict(spec(trace=True).to_dict())
        assert restored == spec(trace=True)
        # legacy payloads without the field default to untraced
        payload = spec(trace=False).to_dict()
        del payload["trace"]
        assert RunSpec.from_dict(payload).trace is False

    def test_describe_mentions_trace(self):
        assert "trace" in spec(trace=True).describe()
        assert "trace" not in spec(trace=False).describe()


class TestExecuteSpec:
    def test_writes_validating_artifact(self, tmp_path):
        s = spec()
        result = execute_spec(s, traces_dir=tmp_path)
        path = trace_artifact_path(tmp_path, s)
        assert path.exists()
        assert validate_jsonl(path) > 1
        assert result.completed > 0
        meta = json.loads(path.read_text().splitlines()[0])
        assert meta["scheduler"] == "C2PL"
        assert meta["seed"] == 1

    def test_untraced_spec_writes_nothing(self, tmp_path):
        execute_spec(spec(trace=False), traces_dir=tmp_path)
        assert list(tmp_path.iterdir()) == []

    def test_tracing_does_not_change_the_result(self, tmp_path):
        traced = execute_spec(spec(trace=True), traces_dir=tmp_path)
        untraced = execute_spec(spec(trace=False))
        # compare everything that is independent of the spec identity
        assert traced.completed == untraced.completed
        assert traced.mean_response_ms == untraced.mean_response_ms
        assert traced.blocks == untraced.blocks
        assert traced.restarts == untraced.restarts


class TestRunnerIntegration:
    def test_batch_writes_artifacts_and_manifest_paths(self, tmp_path):
        runner = ParallelRunner(
            pool_size=1,
            runs_dir=tmp_path / "runs",
            traces_dir=tmp_path / "traces",
            progress=None,
        )
        specs = [spec(scheduler="C2PL"), spec(scheduler="NODC")]
        runner.run_batch(specs, label="traced")
        for s in specs:
            assert trace_artifact_path(tmp_path / "traces", s).exists()
        entries = runner.last_batch["runs"]
        assert [e["trace_artifact"] for e in entries] == [
            str(trace_artifact_path(tmp_path / "traces", s)) for s in specs
        ]
        on_disk = json.loads(runner.last_manifest_path.read_text())
        assert on_disk["runs"] == entries

    def test_untraced_batch_has_null_artifacts(self, tmp_path):
        runner = ParallelRunner(
            pool_size=1, traces_dir=tmp_path / "traces", progress=None
        )
        runner.run_batch([spec(trace=False)], label="plain")
        assert runner.last_batch["runs"][0]["trace_artifact"] is None
        assert not (tmp_path / "traces").exists()

    def test_pool_execution_writes_artifacts(self, tmp_path):
        runner = ParallelRunner(
            pool_size=2, traces_dir=tmp_path / "traces", progress=None
        )
        specs = [spec(rate=0.4), spec(rate=0.8)]
        runner.run_batch(specs, label="pooled")
        for s in specs:
            path = trace_artifact_path(tmp_path / "traces", s)
            assert path.exists()
            assert validate_jsonl(path) > 1

    def test_cached_rerun_keeps_artifact_reference(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        kwargs = dict(
            pool_size=1, cache=cache, traces_dir=tmp_path / "traces",
            progress=None,
        )
        first = ParallelRunner(**kwargs)
        first.run_batch([spec()], label="one")
        second = ParallelRunner(**kwargs)
        second.run_batch([spec()], label="two")
        assert second.cache_hits == 1
        # the cached run still references the content-addressed artifact
        entry = second.last_batch["runs"][0]
        assert entry["cached"] is True
        assert entry["trace_artifact"] == str(
            trace_artifact_path(tmp_path / "traces", spec())
        )
