"""Unit tests for the persistent run registry."""

import json

import pytest

from repro.runner import REGISTRY_FILENAME, RunRegistry, spec_digest


def entry(batch, **fields):
    record = {"batch": batch, "label": "sweep", "status": "running"}
    record.update(fields)
    return record


class TestRecordAndEntries:
    def test_append_and_read_back(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.record(entry("b1"))
        registry.record(entry("b2", label="other"))
        assert [e["batch"] for e in registry.entries()] == ["b1", "b2"]
        assert registry.path == tmp_path / REGISTRY_FILENAME
        assert len(registry) == 2

    def test_latest_record_per_batch_wins(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.record(entry("b1", status="running"))
        registry.record(entry("b2", status="running"))
        registry.record(entry("b1", status="complete", wall_s=3.5))
        entries = registry.entries()
        # first-seen order is kept, but the terminal record replaces
        # the running one
        assert [e["batch"] for e in entries] == ["b1", "b2"]
        assert entries[0]["status"] == "complete"
        assert entries[0]["wall_s"] == 3.5

    def test_requires_batch_id(self, tmp_path):
        with pytest.raises(ValueError):
            RunRegistry(tmp_path).record({"label": "x"})

    def test_missing_file_means_no_entries(self, tmp_path):
        registry = RunRegistry(tmp_path / "nope")
        assert registry.entries() == []
        assert len(registry) == 0

    def test_torn_tail_line_is_tolerated(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.record(entry("b1"))
        with registry.path.open("a") as handle:
            handle.write('{"batch": "b2", "status"')  # a writer mid-line
        assert [e["batch"] for e in registry.entries()] == ["b1"]

    def test_non_object_lines_are_skipped(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.record(entry("b1"))
        with registry.path.open("a") as handle:
            handle.write(json.dumps([1, 2]) + "\n")
            handle.write(json.dumps({"no_batch": True}) + "\n")
        assert [e["batch"] for e in registry.entries()] == ["b1"]


class TestFind:
    def _populated(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.record(entry("20260101-120000-1-b001", label="alpha"))
        registry.record(entry("20260101-120000-1-b002", label="beta"))
        registry.record(entry("20260202-130000-2-b001", label="gamma"))
        return registry

    def test_latest_and_empty_token(self, tmp_path):
        registry = self._populated(tmp_path)
        assert registry.find("latest")["label"] == "gamma"
        assert registry.find("last")["label"] == "gamma"
        assert registry.find("")["label"] == "gamma"
        assert registry.find()["label"] == "gamma"

    def test_exact_id(self, tmp_path):
        registry = self._populated(tmp_path)
        assert (
            registry.find("20260101-120000-1-b002")["label"] == "beta"
        )

    def test_unique_prefix(self, tmp_path):
        registry = self._populated(tmp_path)
        assert registry.find("20260202")["label"] == "gamma"

    def test_label_substring(self, tmp_path):
        registry = self._populated(tmp_path)
        assert (
            registry.find("bet")["batch"] == "20260101-120000-1-b002"
        )

    def test_ambiguous_prefix_raises_with_candidates(self, tmp_path):
        registry = self._populated(tmp_path)
        with pytest.raises(LookupError, match="ambiguous"):
            registry.find("20260101")

    def test_no_match_raises_with_recent_ids(self, tmp_path):
        registry = self._populated(tmp_path)
        with pytest.raises(LookupError, match="no batch matches"):
            registry.find("zzz")

    def test_empty_registry_raises(self, tmp_path):
        with pytest.raises(LookupError, match="no batches registered"):
            RunRegistry(tmp_path).find("latest")

    def test_batch_dir_layout(self, tmp_path):
        registry = RunRegistry(tmp_path)
        assert registry.batch_dir("b9") == tmp_path / "b9"


class TestSpecDigest:
    def test_stable_and_order_sensitive(self):
        assert spec_digest(["a", "b"]) == spec_digest(["a", "b"])
        assert spec_digest(["a", "b"]) != spec_digest(["b", "a"])
        assert len(spec_digest(["a"])) == 16
