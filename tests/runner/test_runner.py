"""Behavioural tests for the parallel batch runner.

The load-bearing property is determinism: a batch must yield
byte-identical results whatever the pool size, and a repeated batch must
be served from the cache (verified through the manifest counts).
"""

import json

import pytest

from repro.machine import MachineConfig
from repro.runner import (
    ParallelRunner,
    ResultCache,
    RunEvent,
    RunSpec,
    WorkloadSpec,
    execute_spec,
)

QUICK = dict(duration_ms=20_000.0, warmup_ms=0.0)


def make_specs(schedulers=("NODC", "C2PL"), rates=(0.4, 0.8), **overrides):
    settings = dict(QUICK)
    settings.update(overrides)
    return [
        RunSpec(
            scheduler=scheduler,
            workload=WorkloadSpec.make("exp1", rate, num_files=16),
            config=MachineConfig(),
            seed=1,
            **settings,
        )
        for scheduler in schedulers
        for rate in rates
    ]


def serialise(results):
    return [
        json.dumps(r.to_dict(), sort_keys=True, allow_nan=True)
        for r in results
    ]


class TestDeterminism:
    def test_pool_sizes_yield_byte_identical_results(self, tmp_path):
        """The issue's acceptance check: pool=1 and pool=N agree exactly."""
        specs = make_specs()
        sequential = ParallelRunner(pool_size=1, progress=None)
        parallel = ParallelRunner(pool_size=4, progress=None)
        a = sequential.run_batch(specs, label="pool1")
        b = parallel.run_batch(specs, label="pool4")
        assert serialise(a) == serialise(b)
        assert [s.cache_key() for s in specs] == [
            s.cache_key() for s in make_specs()
        ]

    def test_results_keep_input_order(self):
        specs = make_specs(schedulers=("NODC", "ASL", "C2PL"), rates=(0.5,))
        results = ParallelRunner(pool_size=3, progress=None).run_batch(specs)
        assert [r.scheduler for r in results] == ["NODC", "ASL", "C2PL"]

    def test_matches_inline_execution(self):
        specs = make_specs(schedulers=("LOW",), rates=(0.6,))
        runner = ParallelRunner(pool_size=2, progress=None)
        assert serialise(runner.run_batch(specs)) == serialise(
            [execute_spec(spec) for spec in specs]
        )


class TestCaching:
    def test_second_invocation_served_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = make_specs()
        first = ParallelRunner(pool_size=1, cache=cache, progress=None)
        cold = first.run_batch(specs, label="cold")
        assert first.last_batch["counts"]["cache_hits"] == 0
        assert first.last_batch["counts"]["cache_misses"] == len(specs)

        second = ParallelRunner(pool_size=1, cache=cache, progress=None)
        warm = second.run_batch(specs, label="warm")
        assert second.last_batch["counts"]["cache_hits"] == len(specs)
        assert second.last_batch["counts"]["cache_misses"] == 0
        assert serialise(cold) == serialise(warm)

    def test_duplicate_specs_coalesce_to_one_simulation(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = ParallelRunner(pool_size=1, cache=cache, progress=None)
        spec = make_specs(schedulers=("NODC",), rates=(0.5,))[0]
        results = runner.run_batch([spec, spec, spec])
        counts = runner.last_batch["counts"]
        assert counts["simulated"] == 1
        assert counts["coalesced"] == 2
        assert serialise(results) == serialise([results[0]] * 3)
        assert len(cache) == 1

    def test_runner_without_cache_still_runs(self):
        runner = ParallelRunner(pool_size=1, progress=None)
        [result] = runner.run_batch(
            make_specs(schedulers=("NODC",), rates=(0.5,))
        )
        assert result.completed > 0


class TestManifest:
    def test_manifest_written_with_counts_and_specs(self, tmp_path):
        runner = ParallelRunner(
            pool_size=1,
            cache=ResultCache(tmp_path / "cache"),
            runs_dir=tmp_path / "runs",
            progress=None,
        )
        specs = make_specs(schedulers=("NODC",), rates=(0.4, 0.8))
        runner.run_batch(specs, label="my sweep")
        path = runner.last_manifest_path
        assert path is not None and path.exists()
        payload = json.loads(path.read_text())
        assert payload["label"] == "my sweep"
        assert payload["pool_size"] == 1
        assert payload["counts"]["total"] == 2
        assert payload["counts"]["cache_misses"] == 2
        assert len(payload["runs"]) == 2
        assert payload["runs"][0]["spec"]["scheduler"] == "NODC"
        assert payload["runs"][0]["key"] == specs[0].cache_key()

    def test_batches_get_distinct_manifests(self, tmp_path):
        runner = ParallelRunner(
            pool_size=1, runs_dir=tmp_path / "runs", progress=None
        )
        specs = make_specs(schedulers=("NODC",), rates=(0.4,))
        runner.run_batch(specs, label="a")
        first = runner.last_manifest_path
        runner.run_batch(specs, label="b")
        assert runner.last_manifest_path != first
        assert len(list((tmp_path / "runs").glob("*.json"))) == 2


class TestProgress:
    def test_events_stream_per_run(self):
        events = []
        runner = ParallelRunner(pool_size=1, progress=events.append)
        specs = make_specs(schedulers=("NODC",), rates=(0.4, 0.8))
        runner.run_batch(specs, label="probe")
        kinds = [event.kind for event in events]
        assert kinds == ["batch-start", "run-done", "run-done", "batch-done"]
        assert all(event.label == "probe" for event in events)
        done_events = [e for e in events if e.kind == "run-done"]
        assert [e.done for e in done_events] == [1, 2]
        assert done_events[0].spec is not None

    def test_print_progress_writes_lines(self, capsys):
        from repro.runner import print_progress
        import sys

        print_progress(
            RunEvent("batch-start", "x", 0, 3), stream=sys.stderr
        )
        print_progress(
            RunEvent("run-done", "x", 1, 3, cached=True), stream=sys.stderr
        )
        err = capsys.readouterr().err
        assert "3 run(s)" in err
        assert "cache" in err


class TestValidation:
    def test_rejects_zero_pool(self):
        with pytest.raises(ValueError):
            ParallelRunner(pool_size=0)
