"""Backend conformance battery: every registered executor backend.

The same scenarios run against each backend so a new backend is "done"
when this file is green: result byte-identity against the serial
reference, cache reuse, stall kill-and-retry, worker-death triage and
Ctrl-C finalization.  Kill/death scenarios are limited to the backends
that run jobs in child processes -- the inline ``serial`` backend *is*
the reference and cannot survive killing itself.
"""

import json
import os
import signal

import pytest

from repro.machine import MachineConfig
from repro.obs import read_status, read_telemetry_records
from repro.runner import (
    ParallelRunner,
    ResultCache,
    RunSpec,
    WorkloadSpec,
    backend_names,
    create_backend,
    get_backend_info,
)
from repro.runner.backends import SharedDirBackend, worker_pool_loop
from repro.runner.backends.shared_dir import spool_dirs
from repro.runner.backends.task import sweep_task
from repro.runner.worker import EXIT_TEST_ENV, STALL_TEST_ENV, execute_spec

ALL_BACKENDS = ["serial", "local", "asyncio", "shared-dir"]
#: backends that execute jobs in child processes (kill/death scenarios)
POOL_BACKENDS = ["local", "asyncio", "shared-dir"]


def backend_options(name, tmp_path):
    if name == "shared-dir":
        return {"spool": tmp_path / "spool"}
    return {}


def make_specs(count, duration_ms=15_000.0):
    return [
        RunSpec(
            scheduler="NODC",
            workload=WorkloadSpec.make("exp1", 0.4, num_files=16),
            config=MachineConfig(),
            seed=seed,
            duration_ms=duration_ms,
            warmup_ms=0.0,
        )
        for seed in range(count)
    ]


def make_runner(tmp_path, backend, **overrides):
    options = dict(
        pool_size=2,
        cache=None,
        runs_dir=tmp_path / "runs",
        progress=None,
        telemetry=True,
        heartbeat_s=0.0,
        progress_every=16,
        backend=backend,
        backend_options=backend_options(backend, tmp_path),
    )
    options.update(overrides)
    return ParallelRunner(**options)


def batch_records(runner):
    path = runner.runs_dir / runner.last_batch_id / "telemetry.jsonl"
    return read_telemetry_records(path, 0)[0]


class TestRegistry:
    def test_all_expected_backends_registered(self):
        assert set(ALL_BACKENDS) <= set(backend_names())

    def test_unknown_backend_is_rejected_with_candidates(self):
        with pytest.raises(KeyError, match="registered:"):
            get_backend_info("fpga")
        with pytest.raises(ValueError, match="fpga"):
            ParallelRunner(backend="fpga")

    def test_capability_flags(self):
        assert get_backend_info("serial").flags.inline
        assert get_backend_info("local").flags.supports_kill
        assert get_backend_info("asyncio").flags.isolates_runs
        assert get_backend_info("shared-dir").flags.distributed

    def test_shared_dir_requires_a_spool(self):
        with pytest.raises(ValueError, match="spool"):
            create_backend("shared-dir", workers=1)


class TestConformance:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_results_byte_identical_to_serial_reference(
        self, tmp_path, backend
    ):
        specs = make_specs(3)
        reference = [execute_spec(spec).to_dict() for spec in specs]
        runner = make_runner(tmp_path, backend)
        results = runner.run_batch(specs, label=f"conf-{backend}")
        assert [r.to_dict() for r in results] == reference
        meta = batch_records(runner)[0]
        assert meta["kind"] == "batch.meta"
        assert meta["backend"] == backend

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_cache_populated_by_one_backend_serves_another(
        self, tmp_path, backend
    ):
        cache = ResultCache(tmp_path / "cache")
        specs = make_specs(2)
        warm = make_runner(tmp_path, "serial", cache=cache)
        warm.run_batch(specs, label="warm")
        runner = make_runner(tmp_path, backend, cache=cache)
        results = runner.run_batch(specs, label=f"hit-{backend}")
        assert all(r is not None for r in results)
        counts = runner.last_batch["counts"]
        assert counts["cache_hits"] == 2
        assert counts["simulated"] == 0

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_bench_outcome_fields_identical_across_backends(
        self, tmp_path, backend
    ):
        specs = make_specs(2)
        reference = make_runner(tmp_path, "serial").run_bench(
            specs, label="bench-ref", repeats=1
        )
        rows = make_runner(tmp_path, backend).run_bench(
            specs, label=f"bench-{backend}", repeats=1
        )
        deterministic = (
            "scheduler", "workload", "dd", "seed", "duration_ms",
            "warmup_ms", "repeats", "events", "completed",
            "throughput_tps",
        )
        for row, expected in zip(rows, reference):
            assert set(row) == set(expected)  # same schema, any backend
            for field in deterministic:
                assert row[field] == expected[field]

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_interrupt_finalizes_artifacts_and_shuts_down(
        self, tmp_path, backend
    ):
        def listener(event):
            if event.kind == "run-done":
                raise KeyboardInterrupt

        runner = make_runner(
            tmp_path, backend, pool_size=1, progress=listener,
        )
        with pytest.raises(KeyboardInterrupt):
            runner.run_batch(make_specs(3), label=f"intr-{backend}")
        manifest = json.loads(runner.last_manifest_path.read_text())
        assert manifest["status"] == "interrupted"
        assert manifest["backend"] == backend
        status_path = runner.runs_dir / runner.last_batch_id / "status.json"
        assert read_status(status_path)["status"] == "interrupted"


class TestStallAcrossBackends:
    @pytest.mark.parametrize("backend", POOL_BACKENDS)
    def test_stalled_cell_is_retried_then_failed(
        self, tmp_path, backend, monkeypatch
    ):
        monkeypatch.setenv(STALL_TEST_ENV, "1:60")
        runner = make_runner(
            tmp_path, backend, stall_timeout_s=0.75, stall_retry=True,
        )
        results = runner.run_batch(make_specs(3), label=f"stall-{backend}")
        assert results[0] is not None and results[2] is not None
        assert results[1] is None
        assert "stalled" in runner.last_failures[1]
        kinds = [r["kind"] for r in batch_records(runner)]
        assert "run.stalled" in kinds
        assert "run.retry" in kinds

    def test_asyncio_kill_leaves_siblings_untouched(
        self, tmp_path, monkeypatch
    ):
        # regression: per-run kill must not take down healthy runs the
        # way breaking a shared process pool does -- each sibling cell
        # is started exactly once and completes
        monkeypatch.setenv(STALL_TEST_ENV, "1:60")
        runner = make_runner(
            tmp_path, "asyncio", pool_size=3,
            stall_timeout_s=0.75, stall_retry=True,
        )
        results = runner.run_batch(make_specs(3), label="kill-blast")
        assert results[0] is not None and results[2] is not None
        assert results[1] is None
        records = batch_records(runner)
        for sibling in (0, 2):
            starts = [
                r for r in records
                if r["kind"] == "run.start" and r["cell"] == sibling
            ]
            assert len(starts) == 1, f"cell {sibling} was restarted"


class TestWorkerDeathAcrossBackends:
    @pytest.mark.parametrize("backend", POOL_BACKENDS)
    def test_dead_worker_fails_only_its_cell(
        self, tmp_path, backend, monkeypatch
    ):
        monkeypatch.setenv(EXIT_TEST_ENV, "1")
        runner = make_runner(tmp_path, backend)
        results = runner.run_batch(make_specs(3), label=f"death-{backend}")
        assert results[0] is not None and results[2] is not None
        assert results[1] is None
        assert "died" in runner.last_failures[1]
        manifest = json.loads(runner.last_manifest_path.read_text())
        assert manifest["status"] == "partial"
        assert [r["status"] for r in manifest["runs"]] == [
            "done", "failed", "done",
        ]


class TestSharedDirProtocol:
    def test_remote_only_spool_served_by_worker_pool_loop(self, tmp_path):
        # local_workers=0: the sweeping side only spools tickets; an
        # explicit worker_pool_loop call (the `repro worker-pool` body)
        # plays the remote host
        import threading

        spool = tmp_path / "spool"
        server = threading.Thread(
            target=worker_pool_loop,
            args=(spool,),
            kwargs={"idle_exit_s": 30.0, "max_tasks": 2},
            daemon=True,
        )
        server.start()
        runner = make_runner(
            tmp_path, "shared-dir",
            backend_options={"spool": spool, "local_workers": 0},
        )
        results = runner.run_batch(make_specs(2), label="remote-only")
        server.join(timeout=30.0)
        assert [r.to_dict() for r in results] == [
            execute_spec(spec).to_dict() for spec in make_specs(2)
        ]

    def test_expired_lease_counts_as_crash_and_is_resubmitted(
        self, tmp_path
    ):
        # a ticket claimed by a worker that vanishes (host reboot: no
        # dead local pid to observe) must come back via lease expiry
        spool = tmp_path / "spool"
        claimed = spool_dirs(spool)[1]
        backend = SharedDirBackend(
            workers=1, spool=spool, local_workers=0, lease_s=1.0
        )
        try:
            spec = make_specs(1)[0]
            task = sweep_task(0, spec, None, None, None)
            # forge an already-claimed ticket from a foreign host so the
            # backend's first scan sees a claim it cannot attribute to
            # any local worker
            name = "zzz-remote-c0-a1.task.json"
            (claimed / name).write_text(json.dumps(task))
            old = os.stat(claimed / name).st_mtime - 60.0
            os.utime(claimed / name, (old, old))
            backend._inflight[name] = task  # as submit() would have
            outcomes = backend.poll(10.0)
            assert len(outcomes) == 1
            assert outcomes[0].crashed
            assert "lease" in (outcomes[0].error or "")
        finally:
            backend.shutdown()

    def test_cancel_unlinks_pending_tickets(self, tmp_path):
        spool = tmp_path / "spool"
        backend = SharedDirBackend(
            workers=1, spool=spool, local_workers=0
        )
        try:
            spec = make_specs(1)[0]
            backend.submit(sweep_task(0, spec, None, None, None))
            pending = spool_dirs(spool)[0]
            assert list(pending.iterdir())
            assert backend.cancel(0)
            assert not list(pending.iterdir())
        finally:
            backend.shutdown()

    def test_shutdown_reaps_spawned_workers(self, tmp_path):
        backend = SharedDirBackend(
            workers=2, spool=tmp_path / "spool", local_workers=2
        )
        spec = make_specs(1)[0]
        backend.submit(sweep_task(0, spec, None, None, None))
        pids = [proc.pid for proc in backend._procs]
        assert pids
        backend.shutdown()
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, signal.SIGCONT)
