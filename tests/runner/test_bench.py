"""Bench pipeline: pinned matrix, row schema, compare/regression logic."""

import copy
import json

import pytest

from repro.bench import (
    BENCH_MATRIX,
    BENCH_SCHEMA_VERSION,
    bench_payload,
    bench_specs,
    compare_bench,
    default_bench_path,
    host_info,
    load_bench_json,
    render_bench_report,
    render_compare_report,
    validate_bench,
    write_bench_json,
)
from repro.runner import ParallelRunner
from repro.runner.worker import execute_bench

QUICK_MS = 20_000.0


def quick_specs(n=2):
    return bench_specs(duration_ms=QUICK_MS)[:n]


def quick_payload(n=2, repeats=1):
    rows = [execute_bench(s, repeats=repeats) for s in quick_specs(n)]
    return bench_payload(rows, git_sha="deadbeef")


class TestBenchSpecs:
    def test_matrix_shape(self):
        specs = bench_specs()
        assert len(specs) == len(BENCH_MATRIX)
        cells = {(s.scheduler, s.workload.rate_tps, s.config.dd) for s in specs}
        assert cells == set(BENCH_MATRIX)

    def test_specs_are_deterministic_and_uncached_flavour(self):
        first, second = bench_specs(), bench_specs()
        assert [s.cache_key() for s in first] == [s.cache_key() for s in second]
        for s in first:
            assert s.warmup_ms == 0.0
            assert s.trace is False and s.timeseries is False

    def test_duration_override(self):
        for s in bench_specs(duration_ms=QUICK_MS):
            assert s.duration_ms == QUICK_MS


class TestExecuteBench:
    def test_row_fields_and_plausibility(self):
        row = execute_bench(quick_specs(1)[0], repeats=1)
        assert row["events"] > 0
        assert row["wall_s"] > 0.0
        assert row["events_per_s"] == pytest.approx(
            row["events"] / row["wall_s"], rel=1e-3
        )
        assert row["wall_per_sim_s"] == pytest.approx(
            row["wall_s"] / (QUICK_MS / 1_000.0), rel=1e-3
        )
        assert row["completed"] > 0
        phases = row["profile"]["phases"]
        assert phases["des.heap"]["calls"] > 0

    def test_repeats_keep_fastest(self):
        row = execute_bench(quick_specs(1)[0], repeats=2)
        assert row["repeats"] == 2

    def test_rejects_nonpositive_repeats(self):
        with pytest.raises(ValueError):
            execute_bench(quick_specs(1)[0], repeats=0)


class TestBenchPayload:
    def test_payload_validates_and_round_trips(self, tmp_path):
        payload = quick_payload()
        validate_bench(payload)
        assert payload["bench_schema_version"] == BENCH_SCHEMA_VERSION
        assert payload["git_sha"] == "deadbeef"
        assert payload["host"] == host_info()
        path = write_bench_json(payload, tmp_path / "BENCH_test.json")
        assert load_bench_json(path) == json.loads(json.dumps(payload))

    def test_validate_rejects_wrong_schema(self):
        payload = quick_payload(n=1)
        payload["schema_version"] = 999
        payload["bench_schema_version"] = 999
        with pytest.raises(ValueError, match="unknown bench schema_version"):
            validate_bench(payload)

    def test_payload_stamps_top_level_schema_version(self):
        payload = quick_payload(n=1)
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION

    def test_validate_accepts_legacy_key_only(self):
        payload = quick_payload(n=1)
        del payload["schema_version"]
        validate_bench(payload)

    def test_validate_rejects_missing_schema_stamp(self):
        payload = quick_payload(n=1)
        del payload["schema_version"]
        del payload["bench_schema_version"]
        with pytest.raises(ValueError, match="no schema_version"):
            validate_bench(payload)

    def test_validate_rejects_contradicting_schema_keys(self):
        payload = quick_payload(n=1)
        payload["bench_schema_version"] = 999
        with pytest.raises(ValueError):
            validate_bench(payload)

    def test_validate_rejects_missing_row_fields(self):
        payload = quick_payload(n=1)
        del payload["runs"][0]["events_per_s"]
        with pytest.raises(ValueError):
            validate_bench(payload)

    def test_default_path_is_dated(self, tmp_path):
        path = default_bench_path(tmp_path, created="2026-08-06T12:00:00")
        assert path.name == "BENCH_2026-08-06.json"


def synthetic_payload(n_cells, events_per_s=100_000.0):
    """A hand-built artifact with ``n_cells`` distinct matrix cells."""
    rows = []
    for i in range(n_cells):
        events = int(events_per_s)
        rows.append({
            "scheduler": f"S{i}", "workload": {"kind": "exp1",
                                               "rate_tps": 1.0},
            "dd": 1, "seed": 0, "duration_ms": 1_000.0, "warmup_ms": 0.0,
            "repeats": 1, "wall_s": events / events_per_s,
            "events": events, "events_per_s": events_per_s,
            "wall_per_sim_s": 1.0,
            "profile": {"phases": {}, "total_s": 1.0, "other_s": 1.0},
            "completed": 1, "throughput_tps": 1.0,
        })
    payload = bench_payload(rows, git_sha=None)
    validate_bench(payload)
    return payload


def slow_down(payload, indices, factor=0.5):
    """Return a copy where the given cells ran ``factor`` times as fast."""
    slowed = copy.deepcopy(payload)
    for i in indices:
        row = slowed["runs"][i]
        row["wall_s"] /= factor
        row["events_per_s"] *= factor
        row["wall_per_sim_s"] /= factor
    return slowed


class TestCompare:
    def test_self_compare_is_clean(self):
        payload = quick_payload()
        report = compare_bench(payload, payload)
        assert report["regressions"] == 0
        assert report["failed"] is False
        assert all(c["status"] == "ok" for c in report["cells"])
        assert report["host_mismatch"] == []
        assert report["aggregate"]["ratio"] == pytest.approx(1.0)

    def test_flags_injected_regression(self):
        baseline = quick_payload()
        current = copy.deepcopy(baseline)
        # simulate the first cell running at half speed
        current["runs"][0]["events_per_s"] *= 0.5
        report = compare_bench(baseline, current, tolerance=0.25)
        assert report["regressions"] == 1
        statuses = [c["status"] for c in report["cells"]]
        assert statuses.count("regression") == 1
        bad = next(c for c in report["cells"] if c["status"] == "regression")
        assert bad["ratio"] == pytest.approx(0.5)
        # with only two matched cells the quorum is one: the gate fails
        assert report["failed"] is True

    def test_one_noisy_cell_does_not_fail_a_big_matrix(self):
        baseline = synthetic_payload(20)
        current = slow_down(baseline, [0])
        report = compare_bench(baseline, current)
        assert report["regressions"] == 1
        assert report["quorum"] == 3  # ceil(0.125 * 20)
        assert report["failed"] is False  # reported, but below the quorum

    def test_whole_scheduler_slowdown_trips_the_quorum(self):
        baseline = synthetic_payload(20)
        current = slow_down(baseline, [0, 1, 2, 3])
        report = compare_bench(baseline, current)
        assert report["regressions"] == 4
        assert report["failed"] is True
        assert any("quorum" in r for r in report["fail_reasons"])

    def test_severe_minority_slowdown_trips_the_aggregate(self):
        baseline = synthetic_payload(20)
        # two cells 10x slower: below the 3-cell quorum, but they now
        # dominate total wall time, so the aggregate speed craters
        current = slow_down(baseline, [0, 1], factor=0.1)
        report = compare_bench(baseline, current)
        assert report["regressions"] == 2 < report["quorum"]
        assert report["aggregate"]["ratio"] < 0.75
        assert report["failed"] is True
        assert any("aggregate" in r for r in report["fail_reasons"])

    def test_tolerance_controls_the_threshold(self):
        baseline = quick_payload(n=1)
        current = copy.deepcopy(baseline)
        current["runs"][0]["events_per_s"] *= 0.85  # 15% slower
        assert compare_bench(baseline, current, tolerance=0.25)["regressions"] == 0
        assert compare_bench(baseline, current, tolerance=0.10)["regressions"] == 1

    def test_rejects_out_of_range_tolerance(self):
        payload = quick_payload(n=1)
        with pytest.raises(ValueError):
            compare_bench(payload, payload, tolerance=1.5)

    def test_disjoint_cells_never_fail(self):
        baseline = quick_payload(n=1)
        current = copy.deepcopy(baseline)
        current["runs"][0]["scheduler"] = "XYZ"
        report = compare_bench(baseline, current)
        assert report["regressions"] == 0
        statuses = sorted(c["status"] for c in report["cells"])
        assert statuses == ["baseline-only", "new"]

    def test_host_mismatch_is_a_warning_not_a_failure(self):
        baseline = quick_payload(n=1)
        current = copy.deepcopy(baseline)
        current["host"] = dict(current["host"], machine="other-arch")
        report = compare_bench(baseline, current)
        assert report["host_mismatch"] == ["machine"]
        assert report["regressions"] == 0


def with_maxrss(payload, kb):
    """A copy where every run row reports ``kb`` of peak RSS."""
    stamped = copy.deepcopy(payload)
    for row in stamped["runs"]:
        row["maxrss_kb"] = kb
    return stamped


class TestMemCompare:
    def test_memory_growth_beyond_tolerance_fails(self):
        baseline = with_maxrss(synthetic_payload(20), 100_000)
        current = with_maxrss(baseline, 150_000)  # 1.5x > the 1.30 gate
        report = compare_bench(baseline, current)
        assert report["mem_matched"] == 20
        assert report["mem_regressions"] == 20
        assert report["failed"] is True
        assert any("memory" in r for r in report["fail_reasons"])
        bad = report["cells"][0]
        assert bad["mem_status"] == "regression"
        assert bad["mem_ratio"] == pytest.approx(1.5)
        # speed was untouched: the fail is memory-only
        assert report["regressions"] == 0

    def test_memory_within_tolerance_is_ok(self):
        baseline = with_maxrss(synthetic_payload(4), 100_000)
        current = with_maxrss(baseline, 120_000)  # 1.2x < 1.30
        report = compare_bench(baseline, current)
        assert report["mem_regressions"] == 0
        assert report["failed"] is False
        assert all(c.get("mem_status") == "ok" for c in report["cells"])

    def test_mem_tolerance_is_independent_of_speed_tolerance(self):
        baseline = with_maxrss(synthetic_payload(4), 100_000)
        current = with_maxrss(baseline, 120_000)
        tight = compare_bench(baseline, current, mem_tolerance=0.10)
        assert tight["mem_regressions"] == 4
        assert tight["failed"] is True
        loose = compare_bench(baseline, current, mem_tolerance=0.50)
        assert loose["failed"] is False

    def test_one_noisy_mem_cell_stays_below_quorum(self):
        # one cell grows 1.4x per-cell, but the fleet peak (set by the
        # other cells) is unchanged: flagged, below quorum, no fail
        baseline = with_maxrss(synthetic_payload(20), 200_000)
        baseline["runs"][0]["maxrss_kb"] = 100_000
        current = copy.deepcopy(baseline)
        current["runs"][0]["maxrss_kb"] = 140_000
        report = compare_bench(baseline, current)
        assert report["mem_regressions"] == 1
        assert report["mem_quorum"] == 3  # ceil(0.125 * 20)
        assert report["mem_aggregate"]["ratio"] == pytest.approx(1.0)
        assert report["failed"] is False

    def test_single_cell_peak_doubling_trips_the_aggregate(self):
        # peak RSS is a max-type resource: one cell doubling the fleet
        # peak is a real regression even below the cell-count quorum
        baseline = with_maxrss(synthetic_payload(20), 100_000)
        current = copy.deepcopy(baseline)
        current["runs"][0]["maxrss_kb"] = 200_000
        report = compare_bench(baseline, current)
        assert report["mem_regressions"] == 1 < report["mem_quorum"]
        assert report["mem_aggregate"]["ratio"] == pytest.approx(2.0)
        assert report["failed"] is True
        assert any("peak RSS" in r for r in report["fail_reasons"])

    def test_rows_without_maxrss_are_skipped(self):
        baseline = synthetic_payload(4)  # no maxrss_kb anywhere
        report = compare_bench(baseline, baseline)
        assert report["mem_matched"] == 0
        assert report["mem_regressions"] == 0
        assert report["mem_aggregate"] is None
        assert report["failed"] is False

    def test_peak_aggregate_tracks_the_worst_cell(self):
        baseline = with_maxrss(synthetic_payload(4), 100_000)
        current = copy.deepcopy(baseline)
        current["runs"][2]["maxrss_kb"] = 180_000
        report = compare_bench(baseline, current)
        assert report["mem_aggregate"]["baseline_peak_kb"] == 100_000
        assert report["mem_aggregate"]["current_peak_kb"] == 180_000
        assert report["mem_aggregate"]["ratio"] == pytest.approx(1.8)

    def test_rejects_nonpositive_mem_tolerance(self):
        payload = quick_payload(n=1)
        with pytest.raises(ValueError):
            compare_bench(payload, payload, mem_tolerance=0.0)

    def test_compare_report_shows_memory_verdict(self):
        baseline = with_maxrss(synthetic_payload(4), 100_000)
        current = with_maxrss(baseline, 160_000)
        text = render_compare_report(compare_bench(baseline, current))
        assert "+mem" in text
        assert "FAIL" in text


class TestRendering:
    def test_bench_report_lists_cells_and_phases(self):
        text = render_bench_report(quick_payload())
        assert "events/s" in text
        assert "des.heap" in text
        for spec in quick_specs():
            assert spec.scheduler in text

    def test_compare_report_shows_verdict_and_warning(self):
        payload = quick_payload(n=1)
        clean = render_compare_report(compare_bench(payload, payload))
        assert "OK" in clean and "FAIL" not in clean
        broken = copy.deepcopy(payload)
        broken["runs"][0]["events_per_s"] *= 0.1
        broken["host"] = dict(broken["host"], python="0.0.0")
        failing = render_compare_report(compare_bench(payload, broken))
        assert "FAIL" in failing and "WARNING" in failing


class TestRunBench:
    def test_serial_run_preserves_order_and_bypasses_cache(self):
        runner = ParallelRunner(pool_size=1, progress=None)
        specs = quick_specs(2)
        rows = runner.run_bench(specs, repeats=1)
        assert [r["scheduler"] for r in rows] == [s.scheduler for s in specs]
        # a second run re-executes (wall times are fresh measurements)
        again = runner.run_bench(specs, repeats=1)
        assert [r["scheduler"] for r in again] == [s.scheduler for s in specs]
        assert all(r["wall_s"] > 0.0 for r in again)

    def test_pooled_run_matches_input_order(self):
        runner = ParallelRunner(pool_size=2, progress=None)
        specs = quick_specs(2)
        rows = runner.run_bench(specs, repeats=1)
        assert [r["scheduler"] for r in rows] == [s.scheduler for s in specs]
        bench_payload(rows, git_sha=None)  # rows slot into a valid payload


class TestBenchPeakRss:
    def test_bench_rows_carry_maxrss(self):
        from repro.runner import execute_bench
        from repro.runner.spec import RunSpec, WorkloadSpec
        from repro.machine.config import MachineConfig

        row = execute_bench(RunSpec(
            scheduler="NODC",
            workload=WorkloadSpec.make("exp1", 0.8),
            config=MachineConfig(dd=1),
            seed=0,
            duration_ms=10_000.0,
            warmup_ms=0.0,
        ))
        assert row["maxrss_kb"] is None or row["maxrss_kb"] > 0
        # on POSIX hosts (the CI floor) the figure must be present
        import resource  # noqa: F401  -- import works => getrusage exists

        assert row["maxrss_kb"] > 1_000
