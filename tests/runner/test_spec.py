"""Unit tests for run/workload specs and their cache keys."""

import dataclasses

import pytest

from repro.machine import MachineConfig
from repro.runner import RunSpec, WorkloadSpec, register_workload, workload_kinds
from repro.txn.workload import Workload


def spec(**overrides):
    base = dict(
        scheduler="LOW",
        workload=WorkloadSpec.make("exp1", 0.8, num_files=16),
        config=MachineConfig(dd=2),
        seed=3,
        duration_ms=100_000.0,
        warmup_ms=10_000.0,
    )
    base.update(overrides)
    return RunSpec(**base)


class TestWorkloadSpec:
    def test_params_are_canonically_ordered(self):
        a = WorkloadSpec.make("exp3", 1.0, sigma=2.0, num_files=8)
        b = WorkloadSpec.make("exp3", 1.0, num_files=8, sigma=2.0)
        assert a == b

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown workload kind"):
            WorkloadSpec.make("nope", 1.0)

    def test_at_rate_replaces_only_rate(self):
        a = WorkloadSpec.make("exp1", 0.5, num_files=32)
        b = a.at_rate(1.25)
        assert b.rate_tps == 1.25
        assert b.params == a.params

    def test_build_constructs_workload(self):
        workload = WorkloadSpec.make("exp1", 0.7, num_files=8).build()
        assert isinstance(workload, Workload)
        assert workload.arrival_rate_tps == 0.7

    def test_build_matches_factory(self):
        from repro.txn.workload import experiment3_workload

        built = WorkloadSpec.make("exp3", 1.0, sigma=2.0, num_files=8).build()
        direct = experiment3_workload(1.0, 2.0, num_files=8)
        assert built.name == direct.name
        assert built.error_model.sigma == direct.error_model.sigma

    def test_roundtrip_through_dict(self):
        a = WorkloadSpec.make("exp3", 1.5, sigma=0.5, num_files=64)
        assert WorkloadSpec.from_dict(a.to_dict()) == a

    def test_register_rejects_duplicates(self):
        assert "exp1" in workload_kinds()
        with pytest.raises(ValueError, match="already registered"):
            register_workload("exp1", lambda rate: None)


class TestRunSpecCacheKey:
    def test_key_is_stable(self):
        assert spec().cache_key() == spec().cache_key()

    def test_key_ignores_object_identity(self):
        a = spec()
        b = RunSpec.from_dict(a.to_dict())
        assert a == b
        assert a.cache_key() == b.cache_key()

    @pytest.mark.parametrize(
        "change",
        [
            dict(scheduler="GOW"),
            dict(seed=4),
            dict(duration_ms=200_000.0),
            dict(warmup_ms=0.0),
            dict(config=MachineConfig(dd=4)),
            dict(workload=WorkloadSpec.make("exp1", 0.9, num_files=16)),
            dict(workload=WorkloadSpec.make("exp1", 0.8, num_files=8)),
        ],
    )
    def test_any_field_change_changes_key(self, change):
        assert spec(**change).cache_key() != spec().cache_key()

    def test_roundtrip_through_dict(self):
        a = spec()
        b = RunSpec.from_dict(a.to_dict())
        assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_describe_mentions_scheduler_and_rate(self):
        text = spec().describe()
        assert "LOW" in text
        assert "0.8" in text
