"""Tests for multi-seed replication and confidence intervals."""

import math

import pytest

from repro.machine import MachineConfig
from repro.sim import run_simulation
from repro.sim.replication import (
    MetricEstimate,
    estimate,
    replicate,
)
from repro.txn import experiment1_workload


class TestEstimate:
    def test_single_value_has_nan_half_width(self):
        e = estimate([5.0])
        assert e.mean == 5.0
        assert math.isnan(e.half_width)

    def test_mean_and_interval(self):
        e = estimate([10.0, 12.0, 14.0])
        assert e.mean == pytest.approx(12.0)
        # t(2, 95%) = 4.303, s = 2, n = 3
        assert e.half_width == pytest.approx(4.303 * 2 / math.sqrt(3), rel=1e-3)
        assert e.low < 12.0 < e.high

    def test_nan_samples_excluded(self):
        e = estimate([10.0, float("nan"), 14.0])
        assert e.mean == pytest.approx(12.0)

    def test_all_nan(self):
        assert math.isnan(estimate([float("nan")]).mean)

    def test_overlap_detection(self):
        a = MetricEstimate(10.0, 1.0, (9.0, 11.0))
        b = MetricEstimate(11.5, 1.0, (10.5, 12.5))
        c = MetricEstimate(20.0, 1.0, (19.0, 21.0))
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)

    def test_str_format(self):
        assert "±" in str(MetricEstimate(1.0, 0.1, (1.0,)))

    def test_large_dof_uses_asymptotic_t(self):
        e = estimate(list(range(100)))
        assert not math.isnan(e.half_width)


class TestReplicate:
    def runner(self, seed):
        return run_simulation(
            "ASL",
            experiment1_workload(0.4),
            MachineConfig(dd=1, num_files=16),
            seed=seed,
            duration_ms=150_000,
            warmup_ms=20_000,
        )

    def test_aggregates_across_seeds(self):
        result = replicate(self.runner, seeds=range(3))
        assert result.scheduler == "ASL"
        assert result.seeds == (0, 1, 2)
        assert result.throughput_tps.mean > 0.2
        assert len(result.throughput_tps.samples) == 3
        assert not math.isnan(result.throughput_tps.half_width)

    def test_mean_response_seconds_view(self):
        result = replicate(self.runner, seeds=range(2))
        assert result.mean_response_s.mean == pytest.approx(
            result.mean_response_ms.mean / 1000.0
        )

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(self.runner, seeds=())

    def test_seeds_vary_the_samples(self):
        result = replicate(self.runner, seeds=range(3))
        assert len(set(result.throughput_tps.samples)) > 1
