"""Unit tests for result records and metric collection."""

import math

import pytest

from repro.sim.metrics import MetricsCollector, SimulationResult


def make_result(**overrides):
    base = dict(
        scheduler="ASL",
        arrival_rate_tps=1.0,
        duration_ms=100_000.0,
        warmup_ms=0.0,
        completed=10,
        mean_response_ms=20_000.0,
        p95_response_ms=50_000.0,
        max_response_ms=60_000.0,
        throughput_tps=0.1,
        cn_utilisation=0.05,
        dpn_utilisation=0.5,
        restarts=0,
        admission_rejections=0,
        blocks=0,
        delays=0,
        in_flight_at_end=0,
        seed=0,
    )
    base.update(overrides)
    return SimulationResult(**base)


class TestSimulationResult:
    def test_mean_response_seconds(self):
        assert make_result(mean_response_ms=42_000.0).mean_response_s == 42.0

    def test_speedup_against(self):
        base = make_result(mean_response_ms=100_000.0)
        fast = make_result(mean_response_ms=25_000.0)
        assert fast.speedup_against(base) == pytest.approx(4.0)

    def test_speedup_with_nan_is_nan(self):
        base = make_result(mean_response_ms=100_000.0)
        broken = make_result(mean_response_ms=float("nan"))
        assert math.isnan(broken.speedup_against(base))

    def test_speedup_with_zero_rt_is_nan(self):
        base = make_result(mean_response_ms=100_000.0)
        zero = make_result(mean_response_ms=0.0)
        assert math.isnan(zero.speedup_against(base))


class TestMetricsCollector:
    def test_commit_recording(self):
        metrics = MetricsCollector()
        metrics.record_commit(5_000.0)
        metrics.record_commit(15_000.0)
        assert metrics.commits == 2
        assert metrics.response_times.mean == pytest.approx(10_000.0)

    def test_throughput_window(self):
        metrics = MetricsCollector()
        for _ in range(5):
            metrics.record_commit(1_000.0)
        # 5 commits in 10 simulated seconds
        assert metrics.throughput_tps(10_000.0) == pytest.approx(0.5)

    def test_throughput_empty_window_nan(self):
        metrics = MetricsCollector()
        assert math.isnan(metrics.throughput_tps(0.0))

    def test_reset_moves_window(self):
        metrics = MetricsCollector()
        metrics.record_commit(1_000.0)
        metrics.record_restart()
        metrics.reset(50_000.0)
        assert metrics.commits == 0
        assert metrics.restarts == 0
        metrics.record_commit(2_000.0)
        # one commit in the 10 s after the reset
        assert metrics.throughput_tps(60_000.0) == pytest.approx(0.1)

    def test_restart_counting(self):
        metrics = MetricsCollector()
        metrics.record_restart()
        metrics.record_restart()
        assert metrics.restarts == 2


class TestP95Exactness:
    def test_defaults_to_exact(self):
        assert make_result().p95_exact is True

    def test_round_trips_through_dict(self):
        estimated = make_result(p95_exact=False)
        restored = SimulationResult.from_dict(estimated.to_dict())
        assert restored.p95_exact is False
        assert restored == estimated

    def test_legacy_payload_defaults_to_exact(self):
        payload = make_result().to_dict()
        del payload["p95_exact"]
        assert SimulationResult.from_dict(payload).p95_exact is True


class TestRestartWastedWork:
    def test_record_restart_accumulates_wasted_ms(self):
        metrics = MetricsCollector()
        metrics.record_restart(1_500.0)
        metrics.record_restart(500.0)
        assert metrics.restarts == 2
        assert metrics.restart_wasted_ms == pytest.approx(2_000.0)

    def test_reset_clears_wasted(self):
        metrics = MetricsCollector()
        metrics.record_restart(1_000.0)
        metrics.reset(10_000.0)
        assert metrics.restart_wasted_ms == 0.0

    def test_result_field_round_trips(self):
        result = make_result(restarts=3, restart_wasted_ms=1234.5)
        clone = SimulationResult.from_dict(result.to_dict())
        assert clone.restart_wasted_ms == pytest.approx(1234.5)

    def test_restarting_run_reports_wasted_simulated_time(self):
        from repro.machine.config import MachineConfig
        from repro.sim.simulation import Simulation
        from repro.txn.workload import experiment1_workload

        result = Simulation(
            MachineConfig(dd=1),
            experiment1_workload(1.2),
            scheduler="OPT",  # validation aborts restart often
            seed=3,
            duration_ms=40_000.0,
            warmup_ms=0.0,
        ).run()
        assert result.restarts > 0
        assert result.restart_wasted_ms > 0.0

    def test_restart_free_run_wastes_nothing(self):
        from repro.machine.config import MachineConfig
        from repro.sim.simulation import Simulation
        from repro.txn.workload import experiment1_workload

        result = Simulation(
            MachineConfig(dd=1),
            experiment1_workload(0.8),
            scheduler="NODC",  # serial execution: no conflicts ever
            seed=1,
            duration_ms=30_000.0,
            warmup_ms=0.0,
        ).run()
        assert result.restarts == 0
        assert result.restart_wasted_ms == 0.0
