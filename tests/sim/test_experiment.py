"""Tests for the operating-point search and sweeps."""

import math

import pytest

from repro.machine import MachineConfig
from repro.sim import (
    best_mpl_result,
    find_throughput_at_response_time,
    run_at_rate,
    sweep,
)
from repro.txn import experiment1_workload


def factory(num_files=16):
    return lambda rate: experiment1_workload(rate, num_files=num_files)


QUICK = dict(duration_ms=150_000.0, warmup_ms=20_000.0)


class TestRunAtRate:
    def test_returns_result_for_rate(self):
        result = run_at_rate("NODC", factory(), 0.5, seed=1, **QUICK)
        assert result.arrival_rate_tps == 0.5
        assert result.completed > 10

    def test_custom_config(self):
        result = run_at_rate(
            "NODC", factory(), 0.5, config=MachineConfig(dd=8), seed=1, **QUICK
        )
        assert result.completed > 10


class TestBisection:
    def test_finds_rate_with_target_rt(self):
        result = find_throughput_at_response_time(
            "ASL",
            factory(),
            target_rt_ms=40_000.0,
            iterations=5,
            seed=1,
            **QUICK,
        )
        # final run's RT is at or below target, throughput positive
        assert result.mean_response_ms <= 40_000.0
        assert result.throughput_tps > 0.1

    def test_low_target_returns_floor_probe(self):
        """An unreachable target (RT below a single service time) makes
        even the lowest probed rate 'too fast'."""
        result = find_throughput_at_response_time(
            "NODC",
            factory(),
            target_rt_ms=1_000.0,  # one scan alone takes > 7 s
            rate_lo=0.05,
            iterations=3,
            seed=1,
            **QUICK,
        )
        assert result.arrival_rate_tps == 0.05

    def test_fast_scheduler_saturates_at_hi(self):
        """If RT stays under target even at rate_hi, rate_hi is returned."""
        result = find_throughput_at_response_time(
            "NODC",
            factory(),
            target_rt_ms=10_000_000.0,
            rate_hi=0.3,
            iterations=3,
            seed=1,
            **QUICK,
        )
        assert result.arrival_rate_tps == 0.3

    def test_better_scheduler_gets_higher_operating_point(self):
        asl = find_throughput_at_response_time(
            "ASL", factory(), iterations=5, seed=1, **QUICK
        )
        c2pl = find_throughput_at_response_time(
            "C2PL", factory(), iterations=5, seed=1, **QUICK
        )
        assert asl.throughput_tps > c2pl.throughput_tps


class TestSweep:
    def test_sweep_keys_by_scheduler(self):
        results = sweep(
            ["NODC", "ASL"],
            lambda s: run_at_rate(s, factory(), 0.4, seed=1, **QUICK),
        )
        assert set(results) == {"NODC", "ASL"}
        assert results["ASL"].scheduler == "ASL"


class TestC2PLM:
    def test_best_mpl_labelled(self):
        result = best_mpl_result(
            factory(),
            MachineConfig(dd=1),
            rate_tps=0.6,
            mpl_candidates=(2, 8),
            seed=1,
            **QUICK,
        )
        assert result.scheduler == "C2PL+M"
        assert not math.isnan(result.mean_response_ms)

    def test_best_mpl_does_not_mutate_candidate_results(self):
        """Relabelling to C2PL+M must produce a copy, not rewrite the
        winning candidate in place."""
        settings = dict(rate_tps=0.6, mpl_candidates=(8,), seed=1, **QUICK)
        candidate = run_at_rate(
            "C2PL",
            factory(),
            settings["rate_tps"],
            config=MachineConfig(dd=1, mpl=8),
            seed=1,
            **QUICK,
        )
        tuned = best_mpl_result(factory(), MachineConfig(dd=1), **settings)
        assert candidate.scheduler == "C2PL"
        assert tuned.scheduler == "C2PL+M"
        assert tuned.mean_response_ms == candidate.mean_response_ms
        assert not tuned.fallback

    def test_degenerate_sweep_flags_fallback(self):
        """A horizon too short for any commit leaves every candidate at
        NaN RT; the fallback must be flagged, not silently mislabelled."""
        with pytest.warns(RuntimeWarning, match="committed no transactions"):
            result = best_mpl_result(
                factory(),
                MachineConfig(dd=1),
                rate_tps=0.6,
                mpl_candidates=(1,),
                seed=1,
                duration_ms=2_000.0,
                warmup_ms=0.0,
            )
        assert result.fallback
        assert result.scheduler == "C2PL+M"
        assert math.isnan(result.mean_response_ms)

    def test_healthy_sweep_not_flagged(self):
        result = best_mpl_result(
            factory(),
            MachineConfig(dd=1),
            rate_tps=0.6,
            mpl_candidates=(2, 8),
            seed=1,
            **QUICK,
        )
        assert not result.fallback

    def test_mpl_control_helps_under_contention(self):
        """The point of +M: bounding MPL avoids blocking chains.  (At a
        short horizon overload censors response times -- only the few
        fast commits are counted -- so the robust comparison is
        completed work, where the MPL-bounded run wins.)"""
        raw = run_at_rate(
            "C2PL", factory(), 1.0, config=MachineConfig(dd=1), seed=1, **QUICK
        )
        tuned = best_mpl_result(
            factory(),
            MachineConfig(dd=1),
            rate_tps=1.0,
            mpl_candidates=(4, 8),
            seed=1,
            **QUICK,
        )
        assert tuned.throughput_tps >= raw.throughput_tps * 0.95
