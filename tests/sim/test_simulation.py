"""Integration tests for the full simulation stack."""

import math

import pytest

from repro.core import SerializabilityAuditor
from repro.machine import MachineConfig
from repro.sim import Simulation, run_simulation
from repro.txn import experiment1_workload, experiment2_workload


def quick(scheduler, rate=0.4, dd=1, num_files=16, seed=3, duration=200_000,
          warmup=0.0, workload=None, **kwargs):
    return run_simulation(
        scheduler,
        workload or experiment1_workload(rate, num_files=num_files),
        MachineConfig(dd=dd, num_files=num_files),
        seed=seed,
        duration_ms=duration,
        warmup_ms=warmup,
        **kwargs,
    )


class TestValidation:
    def test_bad_duration(self):
        with pytest.raises(ValueError):
            Simulation(MachineConfig(), experiment1_workload(1.0), duration_ms=0)

    def test_warmup_must_fit_in_run(self):
        with pytest.raises(ValueError):
            Simulation(
                MachineConfig(),
                experiment1_workload(1.0),
                duration_ms=100.0,
                warmup_ms=100.0,
            )

    def test_unknown_scheduler(self):
        with pytest.raises(KeyError):
            quick("NOPE")


class TestBasicRuns:
    def test_nodc_completes_transactions(self):
        result = quick("NODC")
        assert result.completed > 20
        assert result.throughput_tps == pytest.approx(0.4, rel=0.3)
        assert result.mean_response_ms > 0

    @pytest.mark.parametrize("scheduler", ["ASL", "C2PL", "LOW", "GOW", "OPT"])
    def test_all_schedulers_make_progress(self, scheduler):
        result = quick(scheduler, rate=0.3)
        assert result.completed > 5, f"{scheduler} stalled"

    def test_result_fields_populated(self):
        result = quick("ASL")
        assert result.scheduler == "ASL"
        assert result.arrival_rate_tps == 0.4
        assert 0 <= result.dpn_utilisation <= 1
        assert 0 <= result.cn_utilisation <= 1
        assert result.p95_response_ms >= result.mean_response_ms * 0.5
        assert result.mean_response_s == result.mean_response_ms / 1000.0

    def test_max_arrivals_bounds_the_run(self):
        sim = Simulation(
            MachineConfig(),
            experiment1_workload(1.0),
            scheduler="NODC",
            duration_ms=500_000,
            max_arrivals=10,
        )
        result = sim.run()
        assert result.completed == 10


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = quick("LOW", seed=11)
        b = quick("LOW", seed=11)
        assert a.completed == b.completed
        assert a.mean_response_ms == b.mean_response_ms
        assert a.throughput_tps == b.throughput_tps

    def test_different_seed_different_trace(self):
        a = quick("LOW", seed=11)
        b = quick("LOW", seed=12)
        assert (a.completed, a.mean_response_ms) != (b.completed, b.mean_response_ms)


class TestWarmup:
    def test_warmup_discards_transient(self):
        cold = quick("ASL", duration=300_000, warmup=0)
        warm = quick("ASL", duration=300_000, warmup=100_000)
        # the warm run counts only commits after the cutoff
        assert warm.completed < cold.completed
        assert not math.isnan(warm.mean_response_ms)

    def test_warmup_resets_machine_statistics(self):
        sim = Simulation(
            MachineConfig(),
            experiment1_workload(0.4),
            scheduler="NODC",
            duration_ms=200_000,
            warmup_ms=50_000,
        )
        result = sim.run()
        assert 0 < result.dpn_utilisation <= 1


class TestSerializability:
    """Every scheduler except NODC must produce serializable histories."""

    @pytest.mark.parametrize("scheduler", ["ASL", "C2PL", "LOW", "GOW"])
    def test_locking_schedulers_serializable(self, scheduler):
        auditor = SerializabilityAuditor()
        quick(scheduler, rate=0.6, duration=300_000, auditor=auditor, seed=7)
        assert auditor.committed_count > 10
        assert auditor.is_serializable(), auditor.find_cycle()

    def test_opt_serializable_with_deferred_writes(self):
        auditor = SerializabilityAuditor(deferred_writes=True)
        quick("OPT", rate=0.4, duration=300_000, auditor=auditor, seed=7)
        assert auditor.committed_count > 5
        assert auditor.is_serializable(), auditor.find_cycle()

    @pytest.mark.parametrize("scheduler", ["C2PL", "LOW", "GOW"])
    def test_serializable_on_hot_set(self, scheduler):
        auditor = SerializabilityAuditor()
        quick(
            scheduler,
            duration=300_000,
            auditor=auditor,
            seed=9,
            workload=experiment2_workload(0.6),
        )
        assert auditor.committed_count > 10
        assert auditor.is_serializable(), auditor.find_cycle()

    def test_compacting_auditor_matches_uncompacted_on_real_run(self):
        """Compaction is a pure memory optimisation over a live history."""
        plain = SerializabilityAuditor()
        compacted = SerializabilityAuditor(compact_interval=50)
        quick("C2PL", rate=0.8, duration=200_000, auditor=plain, seed=3)
        quick("C2PL", rate=0.8, duration=200_000, auditor=compacted, seed=3)
        assert compacted.is_serializable() == plain.is_serializable()
        assert compacted.committed_count == plain.committed_count
        assert compacted.retained_accesses < plain.retained_accesses

    def test_nodc_upper_bound_ignores_serializability(self):
        """NODC exists as a bound; with write-write overlap it is
        generally NOT serializable -- document that by construction."""
        auditor = SerializabilityAuditor()
        result = quick("NODC", rate=1.0, duration=300_000, auditor=auditor, seed=5)
        assert result.completed > 50
        # not asserting is_serializable: it legitimately may not be


class TestDeclustering:
    def test_dd_speeds_up_response_time(self):
        slow = quick("NODC", rate=0.3, dd=1, duration=300_000)
        fast = quick("NODC", rate=0.3, dd=8, duration=300_000)
        assert fast.mean_response_ms < slow.mean_response_ms

    def test_speedup_against(self):
        base = quick("ASL", rate=0.3, dd=1, duration=300_000)
        fast = quick("ASL", rate=0.3, dd=4, duration=300_000)
        speedup = fast.speedup_against(base)
        assert speedup > 1.5

    def test_paper_ordering_at_moderate_load(self):
        """ASL/LOW/GOW beat C2PL and OPT under blocking (Exp. 1 shape)."""
        results = {
            s: quick(s, rate=0.5, duration=400_000, warmup=50_000, seed=1)
            for s in ("ASL", "LOW", "GOW", "C2PL", "OPT")
        }
        for good in ("ASL", "LOW", "GOW"):
            assert results[good].throughput_tps > results["C2PL"].throughput_tps
            assert results[good].throughput_tps > results["OPT"].throughput_tps


class TestOPTRestarts:
    def test_restarts_counted_and_response_spans_attempts(self):
        result = quick("OPT", rate=0.5, duration=300_000, seed=2)
        assert result.restarts > 0
        # restarted transactions stretch the mean response time
        assert result.mean_response_ms > 7_200  # > one service time
