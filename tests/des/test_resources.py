"""Unit tests for Resource and Store."""

import pytest

from repro.des import Environment, Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_immediate_grant_when_free(self, env):
        res = Resource(env, capacity=1)
        req = res.request()
        assert req.triggered
        assert res.in_use == 1

    def test_second_request_queues(self, env):
        res = Resource(env, capacity=1)
        res.request()
        second = res.request()
        assert not second.triggered
        assert res.queue_length == 1

    def test_release_grants_next_waiter(self, env):
        res = Resource(env, capacity=1)
        first = res.request()
        second = res.request()
        res.release(first)
        assert second.triggered
        assert res.in_use == 1
        assert res.queue_length == 0

    def test_fifo_granting_order(self, env):
        res = Resource(env, capacity=1)
        order = []

        def user(env, res, name, hold):
            with res.request() as req:
                yield req
                order.append(name)
                yield env.timeout(hold)

        for name in ("a", "b", "c"):
            env.process(user(env, res, name, hold=2))
        env.run()
        assert order == ["a", "b", "c"]
        assert env.now == 6

    def test_multi_server_parallelism(self, env):
        res = Resource(env, capacity=2)
        done = []

        def user(env, res, name):
            with res.request() as req:
                yield req
                yield env.timeout(10)
                done.append((env.now, name))

        for name in ("a", "b", "c"):
            env.process(user(env, res, name))
        env.run()
        # two run in parallel, third waits for a free server
        assert done == [(10, "a"), (10, "b"), (20, "c")]

    def test_cancel_waiting_request(self, env):
        res = Resource(env, capacity=1)
        first = res.request()
        second = res.request()
        third = res.request()
        second.cancel()
        res.release(first)
        assert third.triggered
        assert not second.triggered

    def test_release_of_waiting_request_withdraws_it(self, env):
        res = Resource(env, capacity=1)
        res.request()
        waiting = res.request()
        res.release(waiting)
        assert res.queue_length == 0

    def test_context_manager_releases_on_exception(self, env):
        res = Resource(env, capacity=1)

        def failing_user(env, res):
            with res.request() as req:
                yield req
                raise RuntimeError("boom")

        env.process(failing_user(env, res))
        with pytest.raises(RuntimeError):
            env.run()
        assert res.in_use == 0

    def test_utilisation_accounting(self, env):
        res = Resource(env, capacity=3)
        reqs = [res.request() for _ in range(3)]
        assert res.in_use == 3
        res.release(reqs[0])
        assert res.in_use == 2


class TestStore:
    def test_get_after_put(self, env):
        store = Store(env)
        store.put("item")
        event = store.get()
        assert event.triggered
        assert event.value == "item"

    def test_get_before_put_blocks_then_wakes(self, env):
        store = Store(env)
        received = []

        def consumer(env, store):
            item = yield store.get()
            received.append((env.now, item))

        def producer(env, store):
            yield env.timeout(5)
            store.put("late")

        env.process(consumer(env, store))
        env.process(producer(env, store))
        env.run()
        assert received == [(5, "late")]

    def test_fifo_item_order(self, env):
        store = Store(env)
        for i in range(3):
            store.put(i)
        values = [store.get().value for _ in range(3)]
        assert values == [0, 1, 2]

    def test_fifo_getter_order(self, env):
        store = Store(env)
        received = []

        def consumer(env, store, name):
            item = yield store.get()
            received.append((name, item))

        env.process(consumer(env, store, "first"))
        env.process(consumer(env, store, "second"))

        def producer(env, store):
            yield env.timeout(1)
            store.put("x")
            store.put("y")

        env.process(producer(env, store))
        env.run()
        assert received == [("first", "x"), ("second", "y")]

    def test_len_counts_buffered_items(self, env):
        store = Store(env)
        assert len(store) == 0
        store.put(1)
        store.put(2)
        assert len(store) == 2
        store.get()
        assert len(store) == 1
