"""Unit tests for seeded random streams."""

import pytest
from hypothesis import given, strategies as st

from repro.des import RandomStreams


class TestStreams:
    def test_same_seed_same_sequence(self):
        a = RandomStreams(7).stream("arrivals")
        b = RandomStreams(7).stream("arrivals")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_decorrelated(self):
        streams = RandomStreams(7)
        a = [streams.stream("a").random() for _ in range(10)]
        b = [streams.stream("b").random() for _ in range(10)]
        assert a != b

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random()
        b = RandomStreams(2).stream("x").random()
        assert a != b

    def test_stream_is_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("s") is streams.stream("s")

    def test_draws_on_one_stream_do_not_perturb_another(self):
        reference = RandomStreams(3)
        ref_values = [reference.stream("b").random() for _ in range(5)]

        perturbed = RandomStreams(3)
        for _ in range(100):
            perturbed.stream("a").random()
        got = [perturbed.stream("b").random() for _ in range(5)]
        assert got == ref_values


class TestDistributions:
    def test_exponential_positive(self):
        streams = RandomStreams(11)
        draws = [streams.exponential("arr", rate=0.5) for _ in range(100)]
        assert all(d > 0 for d in draws)

    def test_exponential_mean_close_to_inverse_rate(self):
        streams = RandomStreams(11)
        rate = 2.0
        draws = [streams.exponential("arr", rate) for _ in range(20000)]
        assert sum(draws) / len(draws) == pytest.approx(1 / rate, rel=0.05)

    def test_exponential_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            RandomStreams(0).exponential("arr", rate=0)

    def test_uniform_int_bounds(self):
        streams = RandomStreams(5)
        draws = [streams.uniform_int("files", 3, 9) for _ in range(200)]
        assert min(draws) >= 3
        assert max(draws) <= 9
        assert set(draws) == set(range(3, 10))  # all values reachable

    def test_gauss_mean(self):
        streams = RandomStreams(13)
        draws = [streams.gauss("err", mean=5.0, stddev=1.0) for _ in range(20000)]
        assert sum(draws) / len(draws) == pytest.approx(5.0, abs=0.05)

    def test_sample_without_replacement_avoids_population_copy(self):
        # range/list/tuple populations must be sampled as-is (no per-draw
        # materialisation) and an identical seed must give identical picks
        # regardless of the population's container type
        as_range = RandomStreams(17).sample_without_replacement(
            "pick", range(10_000), k=4
        )
        as_list = RandomStreams(17).sample_without_replacement(
            "pick", list(range(10_000)), k=4
        )
        as_tuple = RandomStreams(17).sample_without_replacement(
            "pick", tuple(range(10_000)), k=4
        )
        assert as_range == as_list == as_tuple

    def test_sample_without_replacement_accepts_iterators(self):
        sample = RandomStreams(17).sample_without_replacement(
            "pick", iter(range(16)), k=3
        )
        assert len(set(sample)) == 3
        assert all(0 <= v < 16 for v in sample)

    def test_sample_without_replacement_distinct(self):
        streams = RandomStreams(17)
        sample = streams.sample_without_replacement("pick", range(16), k=2)
        assert len(sample) == 2
        assert len(set(sample)) == 2
        assert all(0 <= v < 16 for v in sample)

    @given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
    def test_derived_seed_is_deterministic(self, seed, name):
        assert RandomStreams(seed)._derive_seed(name) == RandomStreams(
            seed
        )._derive_seed(name)
