"""Property tests: event ordering is deterministic under same-time ties.

The kernel's heap entries are ``(time, priority, seq, event)``; the
monotone ``seq`` makes equal-time, equal-priority events fire in the
order they were scheduled (FIFO).  Every downstream reproducibility
claim -- byte-identical reruns, pool-size-independent batch results,
observation-only tracing -- rests on this.
"""

from hypothesis import given, settings, strategies as st

from repro.des import Environment

#: a small value pool makes same-time ties overwhelmingly likely
delay_lists = st.lists(
    st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0, 5.0]),
    min_size=1,
    max_size=40,
)


def _fire_order(delays):
    env = Environment()
    fired = []

    def proc(index, delay):
        yield env.timeout(delay)
        fired.append((env.now, index))

    for index, delay in enumerate(delays):
        env.process(proc(index, delay), name=f"p{index}")
    env.run(until=1000.0)
    return fired


@given(delay_lists)
@settings(max_examples=200)
def test_same_time_events_fire_fifo(delays):
    fired = _fire_order(delays)
    assert len(fired) == len(delays)
    # stable sort by delay == FIFO within each timestamp
    expected = sorted(range(len(delays)), key=lambda i: delays[i])
    assert [index for _, index in fired] == expected
    for (time, _), (index, delay) in zip(fired, sorted(
            enumerate(delays), key=lambda pair: pair[1])):
        assert time == delay


@given(delay_lists)
@settings(max_examples=100)
def test_rerun_is_deterministic(delays):
    assert _fire_order(delays) == _fire_order(delays)


@given(st.integers(min_value=1, max_value=20))
@settings(max_examples=50)
def test_zero_delay_chains_preserve_spawn_order(n):
    """Processes spawning work at the *current* instant stay FIFO too."""
    env = Environment()
    fired = []

    def child(index):
        yield env.timeout(0.0)
        fired.append(index)

    def parent():
        for index in range(n):
            env.process(child(index))
        yield env.timeout(0.0)

    env.process(parent())
    env.run(until=10.0)
    assert fired == list(range(n))
