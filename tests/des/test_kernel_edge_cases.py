"""Edge-case tests for the DES kernel's interaction semantics."""

import pytest

from repro.des import Environment, Interrupt, Resource


@pytest.fixture
def env():
    return Environment()


class TestInterruptSemantics:
    def test_interrupting_a_resource_waiter_leaves_queue_clean(self, env):
        """A process interrupted while queued for a Resource must not
        receive the grant later (its request is withdrawn)."""
        res = Resource(env, capacity=1)
        grants = []

        def holder(env, res):
            with res.request() as req:
                yield req
                yield env.timeout(100)

        def waiter(env, res, name):
            req = res.request()
            try:
                yield req
                grants.append(name)
                res.release(req)
            except Interrupt:
                req.cancel()

        env.process(holder(env, res))
        victim = env.process(waiter(env, res, "victim"))
        env.process(waiter(env, res, "survivor"))

        def controller(env, victim):
            yield env.timeout(50)
            victim.interrupt()

        env.process(controller(env, victim))
        env.run()
        assert grants == ["survivor"]

    def test_interrupt_does_not_cancel_pending_timeout_event(self, env):
        """The interrupted process resumes control flow; the abandoned
        timeout stays in the queue but wakes nobody."""
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100)
                log.append("overslept")
            except Interrupt:
                log.append(("interrupted", env.now))
                yield env.timeout(5)
                log.append(("resumed", env.now))

        target = env.process(sleeper(env))

        def controller(env, target):
            yield env.timeout(10)
            target.interrupt()

        env.process(controller(env, target))
        env.run()
        assert log == [("interrupted", 10), ("resumed", 15)]

    def test_double_interrupt_before_resume_raises_once_each(self, env):
        hits = []

        def sleeper(env):
            for _ in range(2):
                try:
                    yield env.timeout(100)
                except Interrupt as exc:
                    hits.append(exc.cause)

        target = env.process(sleeper(env))

        def controller(env, target):
            yield env.timeout(1)
            target.interrupt("first")
            yield env.timeout(1)
            target.interrupt("second")

        env.process(controller(env, target))
        env.run()
        assert hits == ["first", "second"]


class TestProcessChains:
    def test_deep_process_nesting(self, env):
        """100 levels of processes waiting on processes."""

        def nested(env, depth):
            if depth == 0:
                yield env.timeout(1)
                return 0
            value = yield env.process(nested(env, depth - 1))
            return value + 1

        assert env.run(until=env.process(nested(env, 100))) == 100

    def test_many_processes_same_instant(self, env):
        """1000 processes scheduled at one instant all run, in order."""
        order = []

        def worker(env, i):
            yield env.timeout(5)
            order.append(i)

        for i in range(1000):
            env.process(worker(env, i))
        env.run()
        assert order == list(range(1000))


class TestResourceStress:
    def test_release_then_immediate_rerequest(self, env):
        """A releasing process re-requesting in the same instant queues
        behind existing waiters (no barging)."""
        res = Resource(env, capacity=1)
        order = []

        def greedy(env, res):
            with res.request() as req:
                yield req
                order.append("greedy-1")
                yield env.timeout(10)
            with res.request() as req2:
                yield req2
                order.append("greedy-2")

        def patient(env, res):
            yield env.timeout(1)
            with res.request() as req:
                yield req
                order.append("patient")
                yield env.timeout(1)

        env.process(greedy(env, res))
        env.process(patient(env, res))
        env.run()
        assert order == ["greedy-1", "patient", "greedy-2"]
