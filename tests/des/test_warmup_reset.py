"""One parametrized warm-up reset contract across every collector.

The contract: after ``reset`` at time ``t0`` a collector is
indistinguishable from a *fresh* collector created at ``t0`` (with the
same current level, for time-weighted signals) and fed only the
post-reset observations.  Edge cases: reset before the first sample
ever arrives, and reset at time zero.
"""

import math

import pytest

from repro.des.monitor import Counter, Tally, TimeWeighted


class TallyOps:
    name = "Tally"

    def make(self, start, level=0.0):
        return Tally("rt").keep_samples()

    def feed(self, col, t, value):
        col.observe(value)

    def level(self, col):
        return 0.0

    def reset(self, col, now):
        col.reset()

    def read(self, col, now):
        if col.count == 0:
            return ("empty",)
        return (col.count, col.mean, col.minimum, col.maximum,
                col.percentile(50))

    def is_empty(self, col, now):
        return col.count == 0 and math.isnan(col.mean)


class TimeWeightedOps:
    name = "TimeWeighted"

    def make(self, start, level=0.0):
        return TimeWeighted(start, level, "q")

    def feed(self, col, t, value):
        col.update(t, value)

    def level(self, col):
        return col.value

    def reset(self, col, now):
        col.reset(now)

    def read(self, col, now):
        avg = col.time_average(now)
        return (col.value, col.maximum,
                "empty" if math.isnan(avg) else avg)

    def is_empty(self, col, now):
        # a zero-width averaging window is the reset state
        return math.isnan(col.time_average(now))


class CounterOps:
    name = "Counter"

    def make(self, start, level=0.0):
        return Counter("commits")

    def feed(self, col, t, value):
        col.increment(int(value))

    def level(self, col):
        return 0.0

    def reset(self, col, now):
        col.reset()

    def read(self, col, now):
        return (col.total,)

    def is_empty(self, col, now):
        return col.total == 0


OPS = [TallyOps(), TimeWeightedOps(), CounterOps()]

#: (pre observations, reset time, post observations, read time);
#: observations are (time, value) pairs
SCENARIOS = {
    "mid-stream": dict(pre=[(1.0, 5.0), (2.0, 7.0)], reset_at=3.0,
                       post=[(4.0, 2.0), (6.0, 4.0)], read_at=8.0),
    "reset-before-first-sample": dict(pre=[], reset_at=3.0,
                                      post=[(4.0, 2.0)], read_at=8.0),
    "reset-at-time-zero": dict(pre=[], reset_at=0.0,
                               post=[(1.0, 3.0), (2.0, 1.0)], read_at=2.5),
}


@pytest.mark.parametrize("ops", OPS, ids=lambda ops: ops.name)
@pytest.mark.parametrize("scenario", sorted(SCENARIOS), ids=str)
def test_reset_equals_fresh_collector(ops, scenario):
    plan = SCENARIOS[scenario]
    col = ops.make(0.0)
    for t, value in plan["pre"]:
        ops.feed(col, t, value)
    ops.reset(col, plan["reset_at"])
    fresh = ops.make(plan["reset_at"], level=ops.level(col))
    for t, value in plan["post"]:
        ops.feed(col, t, value)
        ops.feed(fresh, t, value)
    assert ops.read(col, plan["read_at"]) == ops.read(fresh, plan["read_at"])


@pytest.mark.parametrize("ops", OPS, ids=lambda ops: ops.name)
def test_reset_leaves_collector_empty(ops):
    col = ops.make(0.0)
    for t, value in [(1.0, 4.0), (2.0, 9.0)]:
        ops.feed(col, t, value)
    ops.reset(col, 5.0)
    assert ops.is_empty(col, 5.0)
