"""Unit tests for the statistics collectors."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.des.monitor import Counter, Tally, TimeWeighted


class TestTally:
    def test_empty_tally_mean_is_nan(self):
        assert math.isnan(Tally().mean)

    def test_single_observation(self):
        t = Tally()
        t.observe(4.0)
        assert t.mean == 4.0
        assert t.count == 1
        assert math.isnan(t.variance)

    def test_mean_and_variance(self):
        t = Tally()
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            t.observe(v)
        assert t.mean == pytest.approx(5.0)
        assert t.variance == pytest.approx(32.0 / 7.0)
        assert t.stddev == pytest.approx(math.sqrt(32.0 / 7.0))

    def test_min_max(self):
        t = Tally()
        for v in (3, -1, 7, 2):
            t.observe(v)
        assert t.minimum == -1
        assert t.maximum == 7

    def test_reset_discards_history(self):
        t = Tally()
        t.observe(100.0)
        t.reset()
        assert t.count == 0
        assert math.isnan(t.mean)
        t.observe(1.0)
        assert t.mean == 1.0

    def test_percentile_requires_keep_samples(self):
        t = Tally()
        t.observe(1.0)
        with pytest.raises(RuntimeError):
            t.percentile(50)

    def test_percentiles(self):
        t = Tally().keep_samples()
        for v in range(1, 101):
            t.observe(float(v))
        assert t.percentile(50) == 50.0
        assert t.percentile(90) == 90.0
        assert t.percentile(100) == 100.0
        assert t.percentile(0) == 1.0

    def test_percentile_out_of_range(self):
        t = Tally().keep_samples()
        t.observe(1.0)
        with pytest.raises(ValueError):
            t.percentile(101)

    def test_percentile_empty_is_nan(self):
        t = Tally().keep_samples()
        assert math.isnan(t.percentile(50))

    def test_sample_memory_is_bounded(self):
        t = Tally("rt").keep_samples(cap=100)
        for v in range(10_000):
            t.observe(float(v))
        assert len(t._samples) == 100
        assert t.count == 10_000

    def test_capped_percentile_stays_accurate(self):
        t = Tally("rt").keep_samples(cap=1_000)
        n = 50_000
        for v in range(n):
            t.observe(float(v))
        # exact p95 of 0..n-1 is ~0.95*n; the reservoir estimate must be
        # within a few percentage points of rank
        assert t.percentile(95) == pytest.approx(0.95 * n, rel=0.05)
        assert t.percentile(50) == pytest.approx(0.50 * n, rel=0.05)

    def test_below_cap_percentiles_are_exact(self):
        capped = Tally("rt").keep_samples(cap=16_384)
        exact = Tally("rt").keep_samples(cap=None)
        for v in range(5_000):
            capped.observe(float(v))
            exact.observe(float(v))
        assert capped.percentile(95) == exact.percentile(95)
        assert capped._samples == exact._samples

    def test_reservoir_is_deterministic(self):
        def fill():
            t = Tally("rt").keep_samples(cap=64)
            for v in range(1_000):
                t.observe(float(v))
            return list(t._samples)

        assert fill() == fill()

    def test_uncapped_mode_keeps_everything(self):
        t = Tally("rt").keep_samples(cap=None)
        for v in range(20_000):
            t.observe(float(v))
        assert len(t._samples) == 20_000

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            Tally().keep_samples(cap=0)

    def test_reset_reseeds_reservoir(self):
        fresh = Tally("rt").keep_samples(cap=64)
        recycled = Tally("rt").keep_samples(cap=64)
        for v in range(500):
            recycled.observe(float(v) + 1e9)  # pre-warm-up junk
        recycled.reset()
        for v in range(1_000):
            fresh.observe(float(v))
            recycled.observe(float(v))
        assert fresh._samples == recycled._samples

    def test_reset_clears_samples(self):
        t = Tally().keep_samples()
        t.observe(5.0)
        t.reset()
        assert math.isnan(t.percentile(50))

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2))
    def test_streaming_mean_matches_batch(self, values):
        t = Tally()
        for v in values:
            t.observe(v)
        assert t.mean == pytest.approx(sum(values) / len(values), abs=1e-6)

    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=2))
    def test_streaming_variance_matches_batch(self, values):
        t = Tally()
        for v in values:
            t.observe(v)
        mean = sum(values) / len(values)
        batch_var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert t.variance == pytest.approx(batch_var, abs=1e-6)


class TestTimeWeighted:
    def test_constant_signal(self):
        s = TimeWeighted(now=0.0, value=3.0)
        assert s.time_average(10.0) == pytest.approx(3.0)

    def test_step_signal(self):
        s = TimeWeighted(now=0.0, value=0.0)
        s.update(5.0, 10.0)  # 0 for 5 units, then 10 for 5 units
        assert s.time_average(10.0) == pytest.approx(5.0)

    def test_increment(self):
        s = TimeWeighted(now=0.0, value=1.0)
        s.increment(4.0)  # 1 for 4 units
        s.increment(8.0, delta=-1.0)  # 2 for 4 units
        assert s.value == 1.0
        assert s.time_average(8.0) == pytest.approx(1.5)

    def test_maximum_tracking(self):
        s = TimeWeighted(now=0.0, value=2.0)
        s.update(1.0, 9.0)
        s.update(2.0, 1.0)
        assert s.maximum == 9.0

    def test_zero_window_average_is_nan(self):
        s = TimeWeighted(now=5.0, value=1.0)
        assert math.isnan(s.time_average(5.0))

    def test_backwards_time_rejected(self):
        s = TimeWeighted(now=10.0)
        with pytest.raises(ValueError):
            s.update(5.0, 1.0)

    def test_reset_restarts_window(self):
        s = TimeWeighted(now=0.0, value=100.0)
        s.update(10.0, 2.0)
        s.reset(10.0)
        assert s.time_average(20.0) == pytest.approx(2.0)
        assert s.maximum == 2.0


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter().total == 0

    def test_increment(self):
        c = Counter()
        c.increment()
        c.increment(by=4)
        assert c.total == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().increment(by=-1)

    def test_reset(self):
        c = Counter()
        c.increment(by=7)
        c.reset()
        assert c.total == 0

    def test_repr_contains_name_and_total(self):
        c = Counter("commits")
        c.increment()
        assert "commits" in repr(c)
        assert "1" in repr(c)


class TestTallyIsExact:
    def test_uncapped_is_always_exact(self):
        t = Tally().keep_samples(cap=None)
        for v in range(5_000):
            t.observe(float(v))
        assert t.is_exact

    def test_exact_until_the_cap_then_estimated(self):
        t = Tally().keep_samples(cap=10)
        for v in range(10):
            t.observe(float(v))
        assert t.is_exact
        t.observe(10.0)
        assert not t.is_exact

    def test_reset_restores_exactness(self):
        t = Tally().keep_samples(cap=4)
        for v in range(100):
            t.observe(float(v))
        assert not t.is_exact
        t.reset()
        assert t.is_exact


class TestTimeWeightedIntegral:
    def test_piecewise_constant_area(self):
        w = TimeWeighted(now=0.0, value=2.0)  # level 2 on [0, 10)
        w.update(10.0, 4.0)                   # level 4 on [10, ...)
        assert w.integral(10.0) == pytest.approx(20.0)
        assert w.integral(15.0) == pytest.approx(40.0)

    def test_current_level_extends_past_last_update(self):
        w = TimeWeighted(now=0.0, value=3.0)
        assert w.integral(7.0) == pytest.approx(21.0)

    def test_integral_consistent_with_time_average(self):
        w = TimeWeighted(now=0.0, value=1.0)
        w.update(4.0, 5.0)
        now = 8.0
        assert w.time_average(now) == pytest.approx(w.integral(now) / now)
