"""Unit tests for the Environment event loop."""

import pytest

from repro.des import Environment, StopSimulation


@pytest.fixture
def env():
    return Environment()


class TestClock:
    def test_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=100.0).now == 100.0

    def test_run_until_time_sets_clock_exactly(self, env):
        env.timeout(3)
        env.run(until=10)
        assert env.now == 10

    def test_run_until_is_end_exclusive(self, env):
        """An event scheduled at exactly ``until`` must not fire (simpy
        semantics); the clock still advances to ``until``."""
        fired = []

        def proc(env):
            yield env.timeout(10)
            fired.append(env.now)

        env.process(proc(env))
        env.run(until=10)
        assert fired == []
        assert env.now == 10
        env.run()  # the event is still queued and fires on resume
        assert fired == [10]

    def test_run_until_fires_events_strictly_before_boundary(self, env):
        fired = []

        def proc(env, delay):
            yield env.timeout(delay)
            fired.append(env.now)

        env.process(proc(env, 9.999))
        env.process(proc(env, 10))
        env.process(proc(env, 10.001))
        env.run(until=10)
        assert fired == [9.999]

    def test_run_until_past_raises(self):
        env = Environment(initial_time=50)
        with pytest.raises(ValueError):
            env.run(until=10)

    def test_run_drains_queue(self, env):
        env.timeout(4)
        env.timeout(9)
        env.run()
        assert env.now == 9

    def test_peek_empty_queue_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_peek_returns_next_event_time(self, env):
        env.timeout(12)
        env.timeout(3)
        assert env.peek() == 3

    def test_step_on_empty_queue_raises(self, env):
        with pytest.raises(StopSimulation):
            env.step()


class TestRunUntilEvent:
    def test_returns_event_value(self, env):
        assert env.run(until=env.timeout(2, value="done")) == "done"

    def test_already_processed_event_returns_immediately(self, env):
        t = env.timeout(1, value="v")
        env.run()
        assert env.run(until=t) == "v"

    def test_failed_event_raises(self, env):
        event = env.event()
        event.fail(KeyError("nope"))
        with pytest.raises(KeyError):
            env.run(until=event)

    def test_never_firing_event_raises_runtime_error(self, env):
        pending = env.event()
        env.timeout(5)
        with pytest.raises(RuntimeError):
            env.run(until=pending)

    def test_stops_exactly_when_event_fires(self, env):
        env.timeout(100)  # later event must not run
        env.run(until=env.timeout(2))
        assert env.now == 2


class TestProcessIntegration:
    def test_simple_process_advances_clock(self, env):
        def proc(env):
            yield env.timeout(5)
            yield env.timeout(5)

        env.process(proc(env))
        env.run()
        assert env.now == 10

    def test_process_return_value(self, env):
        def proc(env):
            yield env.timeout(1)
            return "result"

        assert env.run(until=env.process(proc(env))) == "result"

    def test_process_waits_on_process(self, env):
        def child(env):
            yield env.timeout(3)
            return 7

        def parent(env):
            value = yield env.process(child(env))
            return value * 2

        assert env.run(until=env.process(parent(env))) == 14

    def test_waiting_on_finished_process(self, env):
        def child(env):
            yield env.timeout(1)
            return "early"

        def parent(env, child_proc):
            yield env.timeout(10)
            value = yield child_proc
            return value

        child_proc = env.process(child(env))
        parent_proc = env.process(parent(env, child_proc))
        assert env.run(until=parent_proc) == "early"
        assert env.now == 10

    def test_exception_in_process_propagates_in_strict_mode(self, env):
        def bad(env):
            yield env.timeout(1)
            raise ValueError("inside process")

        env.process(bad(env))
        with pytest.raises(ValueError, match="inside process"):
            env.run()

    def test_exception_fails_process_event_in_lenient_mode(self):
        env = Environment(strict=False)

        def bad(env):
            yield env.timeout(1)
            raise ValueError("inside process")

        def watcher(env, bad_proc):
            try:
                yield bad_proc
            except ValueError:
                return "caught"

        bad_proc = env.process(bad(env))
        assert env.run(until=env.process(watcher(env, bad_proc))) == "caught"

    def test_yielding_non_event_raises(self, env):
        def bad(env):
            yield 42

        env.process(bad(env))
        with pytest.raises(TypeError):
            env.run()

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_active_process_visible_during_resume(self, env):
        observed = []

        def proc(env):
            observed.append(env.active_process)
            yield env.timeout(1)

        p = env.process(proc(env))
        env.run()
        assert observed == [p]
        assert env.active_process is None

    def test_interrupt_delivers_cause(self, env):
        def sleeper(env):
            try:
                yield env.timeout(50)
                return "overslept"
            except Exception as exc:  # Interrupt
                return exc.cause

        def controller(env, target):
            yield env.timeout(5)
            target.interrupt(cause="alarm")

        target = env.process(sleeper(env))
        env.process(controller(env, target))
        assert env.run(until=target) == "alarm"

    def test_interrupt_finished_process_raises(self, env):
        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(RuntimeError):
            p.interrupt()

    def test_is_alive_transitions(self, env):
        def proc(env):
            yield env.timeout(2)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_process_repr_mentions_name(self, env):
        def myproc(env):
            yield env.timeout(1)

        p = env.process(myproc(env), name="worker-3")
        assert "worker-3" in repr(p)
        env.run()
        assert "done" in repr(p)


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build_trace():
            env = Environment()
            trace = []

            def proc(env, name, delays):
                for d in delays:
                    yield env.timeout(d)
                    trace.append((env.now, name))

            env.process(proc(env, "a", [1, 2, 3]))
            env.process(proc(env, "b", [2, 2, 2]))
            env.process(proc(env, "c", [3, 1, 2]))
            env.run()
            return trace

        assert build_trace() == build_trace()
