"""Unit tests for the event primitives."""

import pytest

from repro.des import Environment
from repro.des.events import AllOf, AnyOf, ConditionValue


@pytest.fixture
def env():
    return Environment()


class TestEventLifecycle:
    def test_new_event_is_pending(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(RuntimeError):
            env.event().value

    def test_succeed_sets_value(self, env):
        event = env.event().succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_succeed_with_none_value(self, env):
        event = env.event().succeed()
        assert event.value is None

    def test_double_succeed_raises(self, env):
        event = env.event().succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_then_succeed_raises(self, env):
        event = env.event().fail(ValueError("boom"))
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_fail_marks_not_ok(self, env):
        event = env.event().fail(ValueError("boom"))
        assert event.triggered
        assert not event.ok

    def test_callbacks_run_on_processing(self, env):
        seen = []
        event = env.event()
        event.callbacks.append(seen.append)
        event.succeed("x")
        assert seen == []  # not yet processed
        env.run()
        assert seen == [event]
        assert event.processed


class TestTimeout:
    def test_fires_at_delay(self, env):
        env.run(until=env.timeout(7.5))
        assert env.now == 7.5

    def test_zero_delay_allowed(self, env):
        env.run(until=env.timeout(0))
        assert env.now == 0

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_carries_value(self, env):
        value = env.run(until=env.timeout(1, value="hello"))
        assert value == "hello"

    def test_timeouts_fire_in_time_order(self, env):
        fired = []
        for delay in (5, 1, 3):
            t = env.timeout(delay, value=delay)
            t.callbacks.append(lambda e: fired.append(e.value))
        env.run()
        assert fired == [1, 3, 5]

    def test_same_time_fifo_order(self, env):
        fired = []
        for tag in ("first", "second", "third"):
            t = env.timeout(4, value=tag)
            t.callbacks.append(lambda e: fired.append(e.value))
        env.run()
        assert fired == ["first", "second", "third"]


class TestConditions:
    def test_all_of_waits_for_every_event(self, env):
        events = [env.timeout(d) for d in (1, 2, 3)]
        env.run(until=AllOf(env, events))
        assert env.now == 3

    def test_any_of_fires_on_first(self, env):
        events = [env.timeout(d) for d in (5, 2, 9)]
        env.run(until=AnyOf(env, events))
        assert env.now == 2

    def test_empty_all_of_fires_immediately(self, env):
        cond = AllOf(env, [])
        env.run(until=cond)
        assert env.now == 0

    def test_condition_value_exposes_sub_values(self, env):
        a = env.timeout(1, value="a")
        b = env.timeout(2, value="b")
        value = env.run(until=AllOf(env, [a, b]))
        assert isinstance(value, ConditionValue)
        assert value[a] == "a"
        assert value[b] == "b"
        assert sorted(value.values()) == ["a", "b"]
        assert a in value and len(value) == 2

    def test_condition_value_unknown_event_keyerror(self, env):
        a = env.timeout(1)
        value = env.run(until=AllOf(env, [a]))
        with pytest.raises(KeyError):
            value[env.event()]

    def test_failing_sub_event_fails_condition(self, env):
        good = env.timeout(5)
        bad = env.event()
        cond = AllOf(env, [good, bad])
        bad.fail(RuntimeError("sub failed"))
        with pytest.raises(RuntimeError, match="sub failed"):
            env.run(until=cond)

    def test_mixed_environment_rejected(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            AllOf(env, [env.timeout(1), other.timeout(1)])

    def test_all_of_with_already_processed_event(self, env):
        early = env.timeout(1)
        env.run(until=early)
        late = env.timeout(4)
        env.run(until=AllOf(env, [early, late]))
        assert env.now == 5


class TestEventRepr:
    def test_repr_states(self, env):
        event = env.event()
        assert "pending" in repr(event)
        event.succeed()
        assert "triggered" in repr(event)
        env.run()
        assert "processed" in repr(event)
